// scd — command-line front end to the library.
//
//   scd generate  --out graph.txt [--vertices N --communities K ...]
//   scd info      --graph graph.txt
//   scd fit       --graph graph.txt --communities K [--checkpoint f ...]
//   scd resume    --graph graph.txt --checkpoint f --iterations N
//   scd eval      --communities detected.txt --truth truth.txt
//   scd run       [--backend sim|proc --workers C --iterations N ...]
//   scd simulate  [--workers C --communities K --iterations N ...]
//   scd trace     [--workers C --iterations N --out trace.json ...]
//   scd tune      [--vertices N --communities K --log tune.json ...]
//   scd serve     --checkpoint f [--queries q.txt | --ops N ...]
//
// Every subcommand prints --help. Exit codes: 0 success, 1 usage error,
// 2 runtime/data error. Usage errors (unknown command, unknown flag,
// missing required option) print to stderr and point at --help.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/checkpoint.h"
#include "core/parallel_sampler.h"
#include "fault/fault_plan.h"
#include "core/report.h"
#include "graph/datasets.h"
#include "graph/generator.h"
#include "graph/heldout.h"
#include "graph/metrics.h"
#include "graph/snap_loader.h"
#include "quant/row_codec.h"
#include "proc/proc_cluster.h"
#include "serve/query_engine.h"
#include "serve/serving_index.h"
#include "serve/traffic.h"
#include "sim/cluster.h"
#include "threading/thread_pool.h"
#include "core/distributed_sampler.h"
#include "trace/chrome_trace.h"
#include "trace/critical_path.h"
#include "trace/recorder.h"
#include "tune/report.h"
#include "tune/tuner.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/units.h"

using namespace scd;

namespace {

int cmd_generate(int argc, const char* const* argv) {
  std::uint64_t vertices = 2000;
  std::uint64_t communities = 32;
  double degree = 16.0;
  double overlap2 = 0.3;
  double overlap3 = 0.1;
  std::uint64_t seed = 1;
  std::string out;
  std::string truth_out;
  ArgParser parser("scd generate",
                   "write a planted-overlap graph as a SNAP edge list");
  parser.add_uint("vertices", &vertices, "graph size N")
      .add_uint("communities", &communities, "planted community count")
      .add_double("degree", &degree, "target average degree")
      .add_double("overlap2", &overlap2, "P(vertex holds 2 memberships)")
      .add_double("overlap3", &overlap3, "P(vertex holds 3 memberships)")
      .add_uint("seed", &seed, "generator seed")
      .add_string("out", &out, "edge-list output path (required)")
      .add_string("truth-out", &truth_out,
                  "ground-truth communities output path (optional)");
  if (!parser.parse(argc, argv)) return 0;
  SCD_REQUIRE(!out.empty(), "--out is required");

  rng::Xoshiro256 rng(seed);
  const graph::PlantedConfig config = graph::planted_config_for_degree(
      static_cast<graph::Vertex>(vertices),
      static_cast<std::uint32_t>(communities), degree, overlap2, overlap3);
  const graph::GeneratedGraph g = graph::generate_planted(rng, config);

  std::FILE* f = std::fopen(out.c_str(), "w");
  SCD_REQUIRE(f != nullptr, "cannot open --out for writing");
  std::fprintf(f, "# planted-overlap graph: %u vertices, %llu edges, %llu"
               " communities\n",
               g.graph.num_vertices(),
               static_cast<unsigned long long>(g.graph.num_edges()),
               static_cast<unsigned long long>(communities));
  for (graph::Vertex v = 0; v < g.graph.num_vertices(); ++v) {
    for (graph::Vertex w : g.graph.neighbors(v)) {
      if (v < w) std::fprintf(f, "%u\t%u\n", v, w);
    }
  }
  std::fclose(f);
  std::printf("wrote %s: %u vertices, %s edges\n", out.c_str(),
              g.graph.num_vertices(),
              format_count(g.graph.num_edges()).c_str());

  if (!truth_out.empty()) {
    std::FILE* t = std::fopen(truth_out.c_str(), "w");
    SCD_REQUIRE(t != nullptr, "cannot open --truth-out for writing");
    for (const auto& members : g.truth.communities) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        std::fprintf(t, "%s%u", i ? "\t" : "", members[i]);
      }
      std::fputc('\n', t);
    }
    std::fclose(t);
    std::printf("wrote %s: %zu communities\n", truth_out.c_str(),
                g.truth.communities.size());
  }
  return 0;
}

int cmd_info(int argc, const char* const* argv) {
  std::string path;
  ArgParser parser("scd info", "summarize a SNAP edge-list graph");
  parser.add_string("graph", &path, "edge-list file (required)");
  if (!parser.parse(argc, argv)) return 0;
  SCD_REQUIRE(!path.empty(), "--graph is required");
  const graph::SnapLoadResult loaded = graph::load_snap_file(path);
  const graph::Graph& g = loaded.graph;
  std::printf("%s\n", path.c_str());
  std::printf("  vertices:    %s\n", format_count(g.num_vertices()).c_str());
  std::printf("  edges:       %s\n", format_count(g.num_edges()).c_str());
  std::printf("  avg degree:  %.2f\n",
              2.0 * double(g.num_edges()) / double(g.num_vertices()));
  std::printf("  max degree:  %s\n", format_count(g.max_degree()).c_str());
  std::printf("  density:     %.3g\n", g.density());
  std::printf("  suggested delta: %.3g\n",
              core::suggested_delta(g.density()));
  return 0;
}

struct FitOptions {
  std::string graph_path;
  std::uint64_t communities = 64;
  std::int64_t iterations = 20000;
  std::uint64_t threads = 4;
  std::uint64_t heldout = 1000;
  double step_a = 0.02;
  std::uint64_t seed = 1;
  std::string checkpoint_out;
  std::string communities_out;

  void add_common(ArgParser& parser) {
    parser.add_string("graph", &graph_path, "edge-list file (required)")
        .add_int("iterations", &iterations, "iterations to run")
        .add_uint("threads", &threads, "worker threads")
        .add_uint("heldout", &heldout, "held-out pair count")
        .add_double("step-a", &step_a, "step size a")
        .add_uint("seed", &seed, "root seed")
        .add_string("checkpoint-out", &checkpoint_out,
                    "write final state here (optional)")
        .add_string("communities-out", &communities_out,
                    "write detected communities here (optional)");
  }
};

void report_and_save(const core::ParallelSampler& sampler,
                     const graph::SnapLoadResult& loaded,
                     const FitOptions& opts, std::uint32_t k) {
  for (const core::HistoryPoint& p : sampler.history()) {
    std::printf("  iter %7llu  %-9s perplexity %.3f\n",
                static_cast<unsigned long long>(p.iteration),
                format_duration(p.seconds).c_str(), p.perplexity);
  }
  if (!opts.checkpoint_out.empty()) {
    core::save_checkpoint_file(opts.checkpoint_out, sampler.checkpoint());
    std::printf("checkpoint written to %s (iteration %llu)\n",
                opts.checkpoint_out.c_str(),
                static_cast<unsigned long long>(sampler.iteration()));
  }
  if (!opts.communities_out.empty()) {
    const core::CommunityReport report = core::extract_communities(
        sampler.pi(), core::default_membership_threshold(k));
    std::FILE* f = std::fopen(opts.communities_out.c_str(), "w");
    SCD_REQUIRE(f != nullptr, "cannot open --communities-out");
    for (const auto& c : report.communities) {
      if (c.empty()) continue;
      for (std::size_t i = 0; i < c.size(); ++i) {
        std::fprintf(f, "%s%llu", i ? "\t" : "",
                     static_cast<unsigned long long>(
                         loaded.original_ids[c[i]]));
      }
      std::fputc('\n', f);
    }
    std::fclose(f);
    std::printf("communities written to %s\n",
                opts.communities_out.c_str());
  }
}

int cmd_fit(int argc, const char* const* argv) {
  FitOptions opts;
  ArgParser parser("scd fit", "train a-MMSB on an edge-list graph");
  parser.add_uint("communities", &opts.communities, "inferred K");
  opts.add_common(parser);
  if (!parser.parse(argc, argv)) return 0;
  SCD_REQUIRE(!opts.graph_path.empty(), "--graph is required");

  const graph::SnapLoadResult loaded =
      graph::load_snap_file(opts.graph_path);
  rng::Xoshiro256 split_rng(opts.seed);
  const graph::HeldOutSplit split(
      split_rng, loaded.graph,
      std::min<std::size_t>(opts.heldout, loaded.graph.num_edges() / 5));

  core::Hyper hyper;
  hyper.num_communities = static_cast<std::uint32_t>(opts.communities);
  hyper.delta = core::suggested_delta(loaded.graph.density());
  core::SamplerOptions options;
  options.neighbor_mode = core::NeighborMode::kLinkAware;
  options.num_neighbors = 16;
  options.eval_interval = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(opts.iterations) / 10);
  options.step.a = opts.step_a;
  options.step.b = 4096;
  options.seed = opts.seed;

  core::ParallelSampler sampler(split.training(), &split, hyper, options,
                                static_cast<unsigned>(opts.threads));
  std::printf("training K=%llu on %s (%lld iterations)...\n",
              static_cast<unsigned long long>(opts.communities),
              opts.graph_path.c_str(),
              static_cast<long long>(opts.iterations));
  sampler.run(static_cast<std::uint64_t>(opts.iterations));
  report_and_save(sampler, loaded, opts, hyper.num_communities);
  return 0;
}

int cmd_resume(int argc, const char* const* argv) {
  FitOptions opts;
  std::string checkpoint_in;
  ArgParser parser("scd resume", "continue training from a checkpoint");
  parser.add_string("checkpoint", &checkpoint_in,
                    "checkpoint to resume (required)");
  opts.add_common(parser);
  if (!parser.parse(argc, argv)) return 0;
  SCD_REQUIRE(!opts.graph_path.empty() && !checkpoint_in.empty(),
              "--graph and --checkpoint are required");

  const graph::SnapLoadResult loaded =
      graph::load_snap_file(opts.graph_path);
  const core::Checkpoint checkpoint =
      core::load_checkpoint_file(checkpoint_in);
  rng::Xoshiro256 split_rng(opts.seed);
  const graph::HeldOutSplit split(
      split_rng, loaded.graph,
      std::min<std::size_t>(opts.heldout, loaded.graph.num_edges() / 5));

  core::SamplerOptions options;
  options.neighbor_mode = core::NeighborMode::kLinkAware;
  options.num_neighbors = 16;
  options.eval_interval = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(opts.iterations) / 10);
  options.step.a = opts.step_a;
  options.step.b = 4096;
  options.seed = opts.seed;

  core::ParallelSampler sampler(split.training(), &split,
                                checkpoint.hyper, options,
                                static_cast<unsigned>(opts.threads));
  sampler.restore(checkpoint);
  std::printf("resumed at iteration %llu; running %lld more...\n",
              static_cast<unsigned long long>(sampler.iteration()),
              static_cast<long long>(opts.iterations));
  sampler.run(static_cast<std::uint64_t>(opts.iterations));
  report_and_save(sampler, loaded, opts,
                  checkpoint.hyper.num_communities);
  return 0;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  SCD_REQUIRE(f != nullptr, "cannot open '" + path + "' for writing");
  std::fwrite(text.data(), 1, text.size(), f);
  SCD_REQUIRE(std::fclose(f) == 0, "short write to '" + path + "'");
}

/// Shared tail of --trace-out handling: export the Chrome trace and
/// print the critical-path breakdown.
void export_trace(const trace::TraceRecorder& recorder,
                  const std::string& path) {
  trace::write_chrome_trace(recorder, path);
  std::printf("trace written to %s (%zu spans; load in Perfetto or"
              " chrome://tracing)\n",
              path.c_str(), recorder.total_spans());
  const trace::CriticalPathReport report =
      trace::analyze_critical_path(recorder);
  std::printf("critical path: %s over %zu step(s)\n",
              format_duration(report.total_s).c_str(),
              report.steps.size());
  std::printf("%s", report.table().to_ascii().c_str());
}

int cmd_simulate(int argc, const char* const* argv) {
  std::uint64_t workers = 64;
  std::uint64_t communities = 1024;
  std::int64_t iterations = 64;
  std::uint64_t minibatch = 16384;
  std::uint64_t vertices = 1000;
  std::uint64_t seed = 1;
  bool no_pipeline = false;
  std::string pi_codec = "fp32";
  double sparse_eps = quant::kDefaultSparseEps;
  std::string fault_plan_path;
  std::string trace_out;
  ArgParser parser("scd simulate",
                   "cost-only distributed run at com-Friendster scale");
  parser.add_uint("workers", &workers, "cluster size (worker nodes)")
      .add_uint("communities", &communities, "number of communities K")
      .add_int("iterations", &iterations, "iterations to simulate")
      .add_uint("minibatch", &minibatch, "minibatch vertices M")
      .add_uint("seed", &seed, "root seed (same seed => same run)")
      .add_flag("no-pipeline", &no_pipeline, "disable double buffering")
      .add_string("pi-codec", &pi_codec,
                  "pi row codec in the DKV and on the wire:"
                  " fp32 (exact), fp16, int8, sparse-topr,"
                  " sparse-topr-fp16, or sparse-topr-int8")
      .add_double("sparse-eps", &sparse_eps,
                  "sparse codecs: top-R mass tolerance per row"
                  " (smaller = denser rows)")
      .add_string("fault-plan", &fault_plan_path,
                  "JSON fault schedule; switches to a real-inference"
                  " planted-graph chaos run")
      .add_uint("vertices", &vertices,
                "planted graph size (--fault-plan runs only)")
      .add_string("trace-out", &trace_out,
                  "record a virtual-time trace and write it here as"
                  " Chrome trace_event JSON (optional)");
  if (!parser.parse(argc, argv)) return 0;

  sim::SimCluster::Config config;
  config.num_ranks = static_cast<unsigned>(workers) + 1;
  sim::SimCluster cluster(config);
  core::Hyper hyper;
  hyper.num_communities = static_cast<std::uint32_t>(communities);
  core::DistributedOptions options;
  options.pipeline = !no_pipeline;
  options.pi_codec = quant::codec_from_name(pi_codec);
  options.sparse_eps = static_cast<float>(sparse_eps);
  std::unique_ptr<trace::TraceRecorder> recorder;
  if (!trace_out.empty()) {
    recorder = std::make_unique<trace::TraceRecorder>(config.num_ranks);
    options.trace = recorder.get();
  }

  if (!fault_plan_path.empty()) {
    // Fault tolerance needs real inference (recovery replays real
    // numbers), so chaos runs use a planted graph instead of the
    // cost-only phantom workload.
    const fault::FaultPlan plan =
        fault::FaultPlan::from_file(fault_plan_path);
    plan.validate(config.num_ranks);

    rng::Xoshiro256 gen_rng(seed);
    const graph::PlantedConfig planted = graph::planted_config_for_degree(
        static_cast<graph::Vertex>(vertices),
        static_cast<std::uint32_t>(communities), 20.0);
    const graph::GeneratedGraph g =
        graph::generate_planted(gen_rng, planted);
    rng::Xoshiro256 split_rng(seed + 1);
    const graph::HeldOutSplit split(split_rng, g.graph,
                                    g.graph.num_edges() / 20);
    hyper.delta = core::suggested_delta(g.graph.density());
    options.base.neighbor_mode = core::NeighborMode::kLinkAware;
    options.base.num_neighbors = 16;
    options.base.eval_interval = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(iterations) / 4);
    options.base.seed = seed;
    options.fault_plan = &plan;
    core::DistributedSampler sampler(cluster, split.training(), &split,
                                     hyper, options);
    const core::DistributedResult result =
        sampler.run(static_cast<std::uint64_t>(iterations));

    std::printf("chaos run: %llu workers, K=%llu, %u-vertex planted"
                " graph, plan %s, seed %llu\n",
                static_cast<unsigned long long>(workers),
                static_cast<unsigned long long>(communities),
                g.graph.num_vertices(), fault_plan_path.c_str(),
                static_cast<unsigned long long>(seed));
    std::printf("  virtual time: %s  (%zu crashed rank(s), %llu"
                " iteration(s) redone)\n",
                format_duration(result.virtual_seconds).c_str(),
                result.crashed_ranks.size(),
                static_cast<unsigned long long>(result.redone_iterations));
    for (const core::HistoryPoint& p : result.history) {
      std::printf("  iter %5llu  virtual %-10s perplexity %.3f\n",
                  static_cast<unsigned long long>(p.iteration),
                  format_duration(p.seconds).c_str(), p.perplexity);
    }
    if (recorder != nullptr) export_trace(*recorder, trace_out);
    return 0;
  }

  core::PhantomWorkload workload;
  workload.num_vertices = 65'608'366;
  workload.avg_degree = 55.06;
  workload.minibatch_vertices = static_cast<std::uint32_t>(minibatch);
  workload.minibatch_pairs = minibatch / 2;

  options.base.eval_interval = 0;
  options.base.seed = seed;
  core::DistributedSampler sampler(cluster, workload, hyper, options);
  const core::DistributedResult result =
      sampler.run(static_cast<std::uint64_t>(iterations));

  std::printf("com-Friendster scale, %llu workers, K=%llu, M=%llu,"
              " pipeline=%s, pi-codec=%s\n",
              static_cast<unsigned long long>(workers),
              static_cast<unsigned long long>(communities),
              static_cast<unsigned long long>(minibatch),
              no_pipeline ? "off" : "on",
              quant::codec_name(options.pi_codec));
  std::printf("  virtual time/iteration: %s\n",
              format_duration(result.avg_iteration_seconds).c_str());
  Table table({"stage", "ms_per_iteration"});
  for (std::size_t i = 0; i < sim::kNumPhases; ++i) {
    const auto phase = static_cast<sim::Phase>(i);
    table.add_row({std::string(sim::phase_name(phase)),
                   result.critical_path.get(phase) /
                       double(iterations) * 1e3});
  }
  std::printf("%s", table.to_ascii().c_str());
  if (recorder != nullptr) export_trace(*recorder, trace_out);
  return 0;
}

/// Backend-selectable real-inference run: the same DistributedSampler
/// loops on a planted graph, executed either on the virtual-time
/// simulator or on real forked worker processes (--backend=proc). Same
/// seed + fp32 codec => identical perplexity trajectories on both;
/// only the time column changes meaning (virtual vs wall).
int cmd_run(int argc, const char* const* argv) {
  std::uint64_t workers = 2;
  std::uint64_t vertices = 300;
  std::uint64_t communities = 4;
  std::int64_t iterations = 60;
  std::uint64_t heldout = 200;
  std::uint64_t seed = 1;
  std::uint64_t rollback_interval = 0;
  bool no_pipeline = false;
  std::string backend = "sim";
  std::string pi_codec = "fp32";
  double sparse_eps = quant::kDefaultSparseEps;
  std::string fault_plan_path;
  ArgParser parser("scd run",
                   "real-inference distributed run on a planted graph,"
                   " on the simulated or the multi-process backend");
  parser.add_string("backend", &backend,
                    "execution backend: sim (virtual-time simulator) or"
                    " proc (forked worker processes on this host)")
      .add_uint("workers", &workers, "cluster size (worker ranks)")
      .add_uint("vertices", &vertices, "planted graph size")
      .add_uint("communities", &communities, "number of communities K")
      .add_int("iterations", &iterations, "iterations to run")
      .add_uint("heldout", &heldout, "held-out pair count")
      .add_uint("seed", &seed, "root seed (same seed => same numbers"
                " on both backends)")
      .add_flag("no-pipeline", &no_pipeline, "disable double buffering")
      .add_string("pi-codec", &pi_codec,
                  "pi row codec in the DKV and on the wire: fp32 (exact),"
                  " fp16, int8, sparse-topr, sparse-topr-fp16,"
                  " sparse-topr-int8")
      .add_double("sparse-eps", &sparse_eps,
                  "sparse codecs: top-R mass tolerance per row")
      .add_string("fault-plan", &fault_plan_path,
                  "JSON fault schedule (proc: crash-only plans with"
                  " iteration-triggered crashes and rollback)")
      .add_uint("rollback-interval", &rollback_interval,
                "snapshot every N iterations for crash rollback"
                " (0 = off; proc crash plans require > 0)");
  if (!parser.parse(argc, argv)) return 0;
  SCD_REQUIRE(backend == "sim" || backend == "proc",
              "unknown --backend '" + backend + "' (want sim or proc)");

  const unsigned num_ranks = static_cast<unsigned>(workers) + 1;
  std::unique_ptr<comm::Cluster> cluster;
  if (backend == "proc") {
    proc::ProcCluster::Config config;
    config.num_ranks = num_ranks;
    cluster = std::make_unique<proc::ProcCluster>(config);
  } else {
    sim::SimCluster::Config config;
    config.num_ranks = num_ranks;
    cluster = std::make_unique<sim::SimCluster>(config);
  }

  fault::FaultPlan plan;
  if (!fault_plan_path.empty()) {
    plan = fault::FaultPlan::from_file(fault_plan_path);
    plan.validate(num_ranks);
  }

  rng::Xoshiro256 gen_rng(seed);
  const graph::PlantedConfig planted = graph::planted_config_for_degree(
      static_cast<graph::Vertex>(vertices),
      static_cast<std::uint32_t>(communities), 20.0);
  const graph::GeneratedGraph g = graph::generate_planted(gen_rng, planted);
  rng::Xoshiro256 split_rng(seed + 1);
  const graph::HeldOutSplit split(
      split_rng, g.graph,
      std::min<std::size_t>(heldout, g.graph.num_edges() / 5));

  core::Hyper hyper;
  hyper.num_communities = static_cast<std::uint32_t>(communities);
  hyper.delta = core::suggested_delta(g.graph.density());
  core::DistributedOptions options;
  options.pipeline = !no_pipeline;
  options.pi_codec = quant::codec_from_name(pi_codec);
  options.sparse_eps = static_cast<float>(sparse_eps);
  options.rollback_interval = rollback_interval;
  if (!fault_plan_path.empty()) options.fault_plan = &plan;
  options.base.neighbor_mode = core::NeighborMode::kLinkAware;
  options.base.num_neighbors = 16;
  options.base.eval_interval = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(iterations) / 4);
  options.base.seed = seed;

  core::DistributedSampler sampler(*cluster, split.training(), &split,
                                   hyper, options);
  const core::DistributedResult result =
      sampler.run(static_cast<std::uint64_t>(iterations));

  const char* clock_kind = backend == "proc" ? "wall" : "virtual";
  std::printf("%s backend: %llu workers, K=%llu, %u-vertex planted"
              " graph, pi-codec=%s, seed %llu\n",
              backend.c_str(), static_cast<unsigned long long>(workers),
              static_cast<unsigned long long>(communities),
              g.graph.num_vertices(), quant::codec_name(options.pi_codec),
              static_cast<unsigned long long>(seed));
  std::printf("  %s time: %s  (%.1f iterations/s", clock_kind,
              format_duration(result.virtual_seconds).c_str(),
              static_cast<double>(iterations) /
                  std::max(result.virtual_seconds, 1e-12));
  if (!result.crashed_ranks.empty()) {
    std::printf("; %zu crashed rank(s), %llu iteration(s) redone",
                result.crashed_ranks.size(),
                static_cast<unsigned long long>(result.redone_iterations));
  }
  std::printf(")\n");
  for (const core::HistoryPoint& p : result.history) {
    std::printf("  iter %5llu  %s %-10s perplexity %.6f\n",
                static_cast<unsigned long long>(p.iteration), clock_kind,
                format_duration(p.seconds).c_str(), p.perplexity);
  }
  Table table({"phase", "ms_per_iteration"});
  const comm::PhaseStats stats = cluster->max_stats();
  for (std::size_t i = 0; i < comm::kNumPhases; ++i) {
    const auto phase = static_cast<comm::Phase>(i);
    table.add_row({std::string(comm::phase_name(phase)),
                   stats.get(phase) / double(iterations) * 1e3});
  }
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}

/// Trace-first front end: a short simulated run with the recorder always
/// installed, reporting the per-stage summary, metrics, and critical
/// path (and optionally the Chrome trace file).
int cmd_trace(int argc, const char* const* argv) {
  std::uint64_t workers = 4;
  std::uint64_t communities = 256;
  std::int64_t iterations = 16;
  std::uint64_t minibatch = 4096;
  std::uint64_t seed = 1;
  bool no_pipeline = false;
  std::string out;
  std::string metrics_out;
  ArgParser parser("scd trace",
                   "trace a simulated distributed run and analyze its"
                   " critical path");
  parser.add_uint("workers", &workers, "cluster size (worker nodes)")
      .add_uint("communities", &communities, "number of communities K")
      .add_int("iterations", &iterations, "iterations to simulate")
      .add_uint("minibatch", &minibatch, "minibatch vertices M")
      .add_uint("seed", &seed, "root seed (same seed => same run)")
      .add_flag("no-pipeline", &no_pipeline, "disable double buffering")
      .add_string("out", &out,
                  "Chrome trace_event JSON output path (optional)")
      .add_string("metrics-out", &metrics_out,
                  "metrics snapshot JSON output path (optional)");
  if (!parser.parse(argc, argv)) return 0;

  sim::SimCluster::Config config;
  config.num_ranks = static_cast<unsigned>(workers) + 1;
  sim::SimCluster cluster(config);
  core::Hyper hyper;
  hyper.num_communities = static_cast<std::uint32_t>(communities);
  core::PhantomWorkload workload;
  workload.num_vertices = 65'608'366;
  workload.avg_degree = 55.06;
  workload.minibatch_vertices = static_cast<std::uint32_t>(minibatch);
  workload.minibatch_pairs = minibatch / 2;

  trace::TraceRecorder recorder(config.num_ranks);
  core::DistributedOptions options;
  options.pipeline = !no_pipeline;
  options.base.eval_interval = 0;
  options.base.seed = seed;
  options.trace = &recorder;
  core::DistributedSampler sampler(cluster, workload, hyper, options);
  const core::DistributedResult result =
      sampler.run(static_cast<std::uint64_t>(iterations));

  std::printf("traced %lld iteration(s), %llu workers, K=%llu:"
              " virtual time %s\n",
              static_cast<long long>(iterations),
              static_cast<unsigned long long>(workers),
              static_cast<unsigned long long>(communities),
              format_duration(result.virtual_seconds).c_str());
  std::printf("\nper-stage span summary:\n%s",
              recorder.summary_table().to_ascii().c_str());
  std::printf("\nmetrics (totals with per-rank min/max):\n%s",
              recorder.metrics().table().to_ascii().c_str());
  const trace::CriticalPathReport report =
      trace::analyze_critical_path(recorder);
  std::printf("\ncritical path: %s over %zu step(s)\n",
              format_duration(report.total_s).c_str(),
              report.steps.size());
  std::printf("%s", report.table().to_ascii().c_str());
  if (!out.empty()) {
    trace::write_chrome_trace(recorder, out);
    std::printf("\ntrace written to %s (%zu spans; load in Perfetto or"
                " chrome://tracing)\n",
                out.c_str(), recorder.total_spans());
  }
  if (!metrics_out.empty()) {
    write_text_file(metrics_out, recorder.metrics().to_json() + "\n");
    std::printf("\nmetrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}

/// Trace-attributed autotuner: search the configuration grid with short
/// deterministic simulated probes, pruning directions the critical-path
/// attribution rules out, and explain every decision.
int cmd_tune(int argc, const char* const* argv) {
  std::uint64_t vertices = 1'000'000;
  double avg_degree = 32.0;
  std::uint64_t communities = 1024;
  std::uint64_t neighbors = 32;
  std::uint64_t probe_iterations = 6;
  std::uint64_t seed = 1;
  double sat_vertices = 8192.0;
  std::string log_out;
  std::string report_out;
  ArgParser parser("scd tune",
                   "search shard/rank/pipeline/minibatch/cache settings"
                   " with attributed simulated probes");
  parser.add_uint("vertices", &vertices, "workload graph size N")
      .add_double("avg-degree", &avg_degree, "workload average degree")
      .add_uint("communities", &communities, "number of communities K")
      .add_uint("neighbors", &neighbors, "neighbor sample size |V_n|")
      .add_uint("probe-iterations", &probe_iterations,
                "iterations per probe")
      .add_uint("seed", &seed, "root seed (same seed => same output)")
      .add_double("sat-vertices", &sat_vertices,
                  "minibatch saturation scale of the objective")
      .add_string("log", &log_out,
                  "machine-readable JSON tuning log path (optional)")
      .add_string("report", &report_out,
                  "human-readable why-report path (optional)");
  if (!parser.parse(argc, argv)) return 0;

  tune::TuneWorkload workload;
  workload.num_vertices = vertices;
  workload.avg_degree = avg_degree;
  workload.num_communities = static_cast<std::uint32_t>(communities);
  workload.num_neighbors = static_cast<std::uint32_t>(neighbors);
  workload.probe_iterations = probe_iterations;
  workload.seed = seed;
  workload.sat_vertices = sat_vertices;

  const tune::SearchSpace space = tune::SearchSpace::default_space(vertices);
  const tune::TuneResult result = tune::tune(workload, space);

  const std::string report = tune::why_report(result);
  std::fputs(report.c_str(), stdout);
  if (!log_out.empty()) {
    write_text_file(log_out, tune::tuning_log_json(result));
    std::printf("\ntuning log written to %s (%zu probes)\n",
                log_out.c_str(), result.probes.size());
  }
  if (!report_out.empty()) {
    write_text_file(report_out, report);
    std::printf("why-report written to %s\n", report_out.c_str());
  }
  return 0;
}

/// Serving front end: build a ServingIndex from a checkpoint, then either
/// answer a scripted query file or drive the seeded synthetic load
/// generator and report throughput/latency.
int cmd_serve(int argc, const char* const* argv) {
  std::string checkpoint_path;
  std::string queries_path;
  std::uint64_t ops = 100'000;
  std::uint64_t threads = 4;
  std::uint64_t top_k = 8;
  std::uint64_t members_k = 16;
  std::uint64_t top_r = 32;
  std::uint64_t refreshes = 0;
  std::uint64_t seed = 1;
  double zipf = 0.99;
  double mix_top = 0.70;
  double mix_link = 0.25;
  double mix_members = 0.05;
  std::string refresh_codec = "fp32";
  bool json = false;
  ArgParser parser("scd serve",
                   "serve membership queries from a checkpoint: run a"
                   " query script, or a Zipf-skewed synthetic load with"
                   " optional mid-load snapshot refreshes");
  parser.add_string("checkpoint", &checkpoint_path,
                    "checkpoint to serve (required)")
      .add_string("queries", &queries_path,
                  "query script (`top u k` / `link u v` / `members c k`"
                  " lines); replaces the synthetic load")
      .add_uint("ops", &ops, "synthetic load: total queries")
      .add_uint("threads", &threads, "query worker threads")
      .add_double("zipf", &zipf, "node popularity Zipf exponent"
                  " (0 = uniform)")
      .add_double("mix-top", &mix_top, "share of top-community queries")
      .add_double("mix-link", &mix_link, "share of link-probability queries")
      .add_double("mix-members", &mix_members, "share of member queries")
      .add_uint("top-k", &top_k, "k of synthetic top queries")
      .add_uint("members-k", &members_k, "k of synthetic member queries")
      .add_uint("top-r", &top_r, "per-node top list capacity R")
      .add_uint("refreshes", &refreshes,
                "snapshot refreshes to publish mid-load")
      .add_string("refresh-codec", &refresh_codec,
                  "checkpoint codec of the refresh round-trip: fp32,"
                  " fp16, int8, sparse-topr, sparse-topr-fp16,"
                  " sparse-topr-int8")
      .add_uint("seed", &seed, "load generator seed")
      .add_flag("json", &json, "print the load report as JSON");
  if (!parser.parse(argc, argv)) return 0;
  SCD_REQUIRE(!checkpoint_path.empty(), "--checkpoint is required");

  core::Checkpoint checkpoint = core::load_checkpoint_file(checkpoint_path);
  serve::ServingIndexOptions index_options;
  index_options.top_r = static_cast<std::uint32_t>(top_r);
  threading::ThreadPool build_pool(static_cast<unsigned>(threads));
  serve::ServingSnapshots snapshots;
  const auto build_begin = std::chrono::steady_clock::now();
  snapshots.publish(serve::build_serving_index(std::move(checkpoint),
                                               index_options, build_pool));
  const double build_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - build_begin)
          .count();

  std::uint32_t n = 0;
  std::uint32_t k = 0;
  std::uint64_t inverted = 0;
  std::size_t bytes = 0;
  {
    const serve::ServingSnapshots::Ref index = snapshots.acquire();
    n = index->num_vertices();
    k = index->num_communities();
    inverted = index->inverted_entries();
    bytes = index->index_bytes();
  }
  if (!json) {
    std::printf("serving %s: %s vertices, %u communities, top-%llu index"
                " (%s inverted entries, %s, built in %s)\n",
                checkpoint_path.c_str(), format_count(n).c_str(), k,
                static_cast<unsigned long long>(
                    std::min<std::uint64_t>(top_r, k)),
                format_count(inverted).c_str(),
                format_bytes(bytes).c_str(),
                format_duration(build_ms / 1e3).c_str());
  }

  if (!queries_path.empty()) {
    const std::vector<serve::ScriptedQuery> queries =
        serve::load_query_script(queries_path);
    serve::QueryEngine engine(snapshots);
    for (const serve::ScriptedQuery& q : queries) {
      switch (q.kind) {
        case serve::QueryKind::kTop: {
          std::printf("top %u:", q.a);
          for (const serve::TopEntry& e :
               engine.top_communities(q.a, q.b)) {
            std::printf(" %u:%.4f", e.community, double(e.weight));
          }
          std::printf("\n");
          break;
        }
        case serve::QueryKind::kLink:
          std::printf("link %u %u: %.6f\n", q.a, q.b,
                      engine.link_probability(q.a, q.b));
          break;
        case serve::QueryKind::kMembers: {
          std::printf("members %u:", q.a);
          for (const serve::MemberEntry& e :
               engine.community_members(q.a, q.b)) {
            std::printf(" %u:%.4f", e.vertex, double(e.weight));
          }
          std::printf("\n");
          break;
        }
      }
    }
    return 0;
  }

  serve::TrafficOptions traffic;
  traffic.ops = ops;
  traffic.threads = static_cast<unsigned>(threads);
  traffic.zipf_s = zipf;
  traffic.mix_top = mix_top;
  traffic.mix_link = mix_link;
  traffic.mix_members = mix_members;
  traffic.top_k = static_cast<std::uint32_t>(top_k);
  traffic.members_k = static_cast<std::uint32_t>(members_k);
  traffic.seed = seed;
  traffic.refreshes = static_cast<unsigned>(refreshes);
  traffic.refresh_codec = quant::codec_from_name(refresh_codec);
  const serve::TrafficReport report = serve::run_traffic(snapshots, traffic);

  if (json) {
    std::printf(
        "{\"checkpoint\": \"%s\", \"vertices\": %u, \"communities\": %u,"
        " \"top_r\": %llu, \"build_ms\": %.3f, \"ops\": %llu,"
        " \"threads\": %llu, \"qps\": %.1f, \"p50_us\": %.2f,"
        " \"p95_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f,"
        " \"refreshes\": %llu, \"acquire_retries\": %llu,"
        " \"reader_stalls\": %llu, \"checksum\": %.17g}\n",
        checkpoint_path.c_str(), n, k,
        static_cast<unsigned long long>(std::min<std::uint64_t>(top_r, k)),
        build_ms, static_cast<unsigned long long>(report.ops),
        static_cast<unsigned long long>(threads), report.qps,
        report.p50_us, report.p95_us, report.p99_us, report.max_us,
        static_cast<unsigned long long>(report.refreshes),
        static_cast<unsigned long long>(report.acquire_retries),
        static_cast<unsigned long long>(report.reader_stalls),
        report.checksum);
  } else {
    std::printf("%llu queries (%llu top / %llu link / %llu members),"
                " %llu thread(s), %llu refresh(es)\n",
                static_cast<unsigned long long>(report.ops),
                static_cast<unsigned long long>(report.ops_top),
                static_cast<unsigned long long>(report.ops_link),
                static_cast<unsigned long long>(report.ops_members),
                static_cast<unsigned long long>(threads),
                static_cast<unsigned long long>(report.refreshes));
    std::printf("  throughput: %.0f queries/s over %s\n", report.qps,
                format_duration(report.wall_s).c_str());
    std::printf("  latency:    p50 %.1fus  p95 %.1fus  p99 %.1fus"
                "  max %.1fus\n",
                report.p50_us, report.p95_us, report.p99_us,
                report.max_us);
    std::printf("  snapshots:  %llu acquire retries, %llu reader"
                " stalls\n",
                static_cast<unsigned long long>(report.acquire_retries),
                static_cast<unsigned long long>(report.reader_stalls));
  }
  return 0;
}

int cmd_eval(int argc, const char* const* argv) {
  std::string detected_path;
  std::string truth_path;
  ArgParser parser("scd eval",
                   "score detected communities against ground truth");
  parser.add_string("communities", &detected_path,
                    "detected cover file (required)")
      .add_string("truth", &truth_path,
                  "ground-truth cover file (required)");
  if (!parser.parse(argc, argv)) return 0;
  SCD_REQUIRE(!detected_path.empty() && !truth_path.empty(),
              "--communities and --truth are required");
  const graph::Cover detected = graph::load_cover_file(detected_path);
  const graph::Cover truth = graph::load_cover_file(truth_path);
  std::size_t detected_nonempty = 0;
  for (const auto& c : detected) {
    if (!c.empty()) ++detected_nonempty;
  }
  std::printf("truth:    %zu communities\n", truth.size());
  std::printf("detected: %zu communities\n", detected_nonempty);
  std::printf("best-match F1: %.4f\n",
              graph::best_match_f1(truth, detected));
  return 0;
}

void print_usage(std::FILE* out) {
  std::fputs(
      "scd — scalable overlapping community detection\n"
      "usage: scd <command> [options]\n\n"
      "commands:\n"
      "  generate   write a planted-overlap graph as a SNAP edge list\n"
      "  info       summarize an edge-list graph\n"
      "  fit        train a-MMSB on an edge-list graph\n"
      "  eval       score detected communities against ground truth\n"
      "  resume     continue training from a checkpoint\n"
      "  run        real-inference distributed run on the simulated or"
      " multi-process backend\n"
      "  serve      serve membership queries from a checkpoint\n"
      "  simulate   cost-only distributed run on the virtual cluster\n"
      "  trace      trace a simulated run; report its critical path\n"
      "  tune       autotune cluster/sampler knobs with attributed"
      " probes\n\n"
      "run `scd <command> --help` for the command's options.\n",
      out);
}

}  // namespace

int main(int argc, char** argv) {
  // Exit-code/stream contract, uniform across subcommands: requested
  // help goes to stdout and exits 0; any usage problem (no command,
  // unknown command, unknown or malformed flag, missing required
  // option) diagnoses on stderr and exits 1; runtime/data errors exit 2.
  if (argc < 2) {
    std::fprintf(stderr, "error: no command given\n\n");
    print_usage(stderr);
    return 1;
  }
  if (std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    print_usage(stdout);
    return 0;
  }
  const std::string command = argv[1];
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "info") return cmd_info(sub_argc, sub_argv);
    if (command == "fit") return cmd_fit(sub_argc, sub_argv);
    if (command == "resume") return cmd_resume(sub_argc, sub_argv);
    if (command == "eval") return cmd_eval(sub_argc, sub_argv);
    if (command == "serve") return cmd_serve(sub_argc, sub_argv);
    if (command == "run") return cmd_run(sub_argc, sub_argv);
    if (command == "simulate") return cmd_simulate(sub_argc, sub_argv);
    if (command == "trace") return cmd_trace(sub_argc, sub_argv);
    if (command == "tune") return cmd_tune(sub_argc, sub_argv);
    std::fprintf(stderr, "error: unknown command '%s'\n\n",
                 command.c_str());
    print_usage(stderr);
    return 1;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\nrun `scd %s --help` for usage.\n",
                 e.what(), command.c_str());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
