#!/usr/bin/env bash
# Tier-1 verification: the default build + full test suite, then the same
# suite under AddressSanitizer + UBSan (the `asan` CMake preset). Run from
# anywhere; both build trees live next to the sources (build/, build-asan/).
#
#   tools/tier1.sh           # default + asan
#   SKIP_ASAN=1 tools/tier1.sh   # default only (fast local loop)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default preset =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j
# The chaos suite (fault injection + recovery) carries its own ctest
# label; run it by label so a mislabeled/undiscovered suite fails loudly
# instead of silently shrinking the full run above.
ctest --preset default -L chaos --no-tests=error --output-on-failure
# Likewise the autotuner acceptance suite (tuned-vs-exhaustive on the
# comms- and compute-bound workloads) — labeled `tune`.
ctest --preset default -L tune --no-tests=error --output-on-failure
# And the pi-row quantization suite — labeled `quant`. Includes the
# perplexity-tolerance gate: lossy codecs within 1% of fp32 held-out
# perplexity, fp32 bit-identical to the float path.
ctest --preset default -L quant --no-tests=error --output-on-failure

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== tier-1: asan preset =="
  cmake --preset asan
  cmake --build --preset asan -j
  ctest --preset asan -j
  ctest --preset asan -L chaos --no-tests=error --output-on-failure
  ctest --preset asan -L tune --no-tests=error --output-on-failure
  ctest --preset asan -L quant --no-tests=error --output-on-failure
fi

# Bench drift guard: diff the deterministic modeled benches against their
# committed JSON baselines. Runs from the default tree only — the asan
# preset builds with SCD_BUILD_BENCH=OFF (and drift is build-type
# independent anyway: the benches measure virtual time, not wall time).
echo "== tier-1: bench baselines =="
cmake --build --preset default -j --target check_bench

echo "tier-1: all green"
