#!/usr/bin/env bash
# Tier-1 verification: the default build + full test suite, then the same
# suite under AddressSanitizer + UBSan (the `asan` CMake preset), then the
# concurrency suites (serve + threading) under ThreadSanitizer (the `tsan`
# preset). Run from anywhere; the build trees live next to the sources
# (build/, build-asan/, build-tsan/).
#
#   tools/tier1.sh               # default + asan + tsan
#   SKIP_ASAN=1 tools/tier1.sh   # skip the asan pass (fast local loop)
#   SKIP_TSAN=1 tools/tier1.sh   # skip the tsan pass
set -euo pipefail
cd "$(dirname "$0")/.."

# Each step's wall time is recorded here and printed as a summary at the
# end, so slow suites are visible without scrolling through ctest logs.
SUMMARY=()
timed() {  # timed <name> <command...>
  local name=$1; shift
  local t0=$SECONDS
  "$@"
  SUMMARY+=("$(printf '%-28s %4ds' "$name" $((SECONDS - t0)))")
}

# The labeled suites (chaos, tune, quant, sparse, serve, proc) are run
# by label so a mislabeled/undiscovered suite fails loudly instead of
# silently shrinking the full run:
#   chaos  — fault injection + recovery
#   tune   — autotuner acceptance (tuned-vs-exhaustive)
#   quant  — pi-row quantization incl. the perplexity-tolerance gate
#   sparse — sparse top-R codec, kernels, DKV accounting, checkpoints
#   serve  — serving index/query engine/traffic incl. snapshot swap
#   proc   — multi-process backend: sockets, forked workers, sim parity
run_preset() {  # run_preset <preset>
  local preset=$1
  timed "$preset: full suite" ctest --preset "$preset" -j
  local label
  for label in chaos tune quant sparse serve proc; do
    timed "$preset: -L $label" \
      ctest --preset "$preset" -L "$label" --no-tests=error \
        --output-on-failure
  done
}

echo "== tier-1: default preset =="
timed "default: configure+build" bash -c \
  'cmake --preset default && cmake --build --preset default -j'
run_preset default

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== tier-1: asan preset =="
  timed "asan: configure+build" bash -c \
    'cmake --preset asan && cmake --build --preset asan -j'
  run_preset asan
fi

# TSan pass: the lock-free snapshot swap and the thread pool are exactly
# the code where a missed fence shows up as a rare torn read, so the
# concurrency-heavy labels run under ThreadSanitizer. Scoped to
# serve+threading (TSan slows everything ~10x; the rest of the suite is
# covered by the asan pass).
if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tier-1: tsan preset (serve + threading) =="
  timed "tsan: configure+build" bash -c \
    'cmake --preset tsan && cmake --build --preset tsan -j'
  timed "tsan: -L serve|threading" \
    ctest --preset tsan -L 'serve|threading' --no-tests=error \
      --output-on-failure
fi

# Bench drift guard: diff the deterministic modeled benches against their
# committed JSON baselines. Runs from the default tree only — the asan
# preset builds with SCD_BUILD_BENCH=OFF (and drift is build-type
# independent anyway: the benches measure virtual time, not wall time).
echo "== tier-1: bench baselines =="
timed "default: check_bench" \
  cmake --build --preset default -j --target check_bench

echo "== tier-1: wall-time summary =="
for line in "${SUMMARY[@]}"; do echo "  $line"; done

echo "tier-1: all green"
