#!/usr/bin/env python3
"""Exit-code/stream contract check for the scd CLI.

The contract, uniform across every subcommand:
  * requested help (`--help` / `-h`, top level or per command) prints to
    stdout and exits 0;
  * any usage problem (no command, unknown command, unknown flag,
    missing required option) diagnoses on stderr and exits 1, pointing
    the user at --help;
  * runtime/data errors (e.g. a missing input file) exit 2.

Run: check_cli.py /path/to/scd
"""

import subprocess
import sys

COMMANDS = [
    "generate", "info", "fit", "eval", "resume", "serve", "simulate",
    "run", "trace", "tune",
]

failures = []


def run(args):
    return subprocess.run(args, capture_output=True, text=True)


def check(label, cond, detail=""):
    if not cond:
        failures.append(f"{label}: {detail}")
        print(f"FAIL {label} {detail}")
    else:
        print(f"ok   {label}")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    scd = sys.argv[1]

    r = run([scd])
    check("no-command exits 1", r.returncode == 1, f"exit={r.returncode}")
    check("no-command diagnoses on stderr",
          "error" in r.stderr and "usage" in r.stderr,
          repr(r.stderr[:120]))

    for flag in ("--help", "-h"):
        r = run([scd, flag])
        check(f"top-level {flag} exits 0", r.returncode == 0,
              f"exit={r.returncode}")
        check(f"top-level {flag} prints commands to stdout",
              "commands:" in r.stdout and not r.stderr,
              repr((r.stdout[:80], r.stderr[:80])))

    r = run([scd, "frobnicate"])
    check("unknown command exits 1", r.returncode == 1,
          f"exit={r.returncode}")
    check("unknown command names itself on stderr",
          "frobnicate" in r.stderr and "usage" in r.stderr,
          repr(r.stderr[:120]))
    check("unknown command keeps stdout clean", r.stdout == "",
          repr(r.stdout[:80]))

    for cmd in COMMANDS:
        r = run([scd, cmd, "--help"])
        check(f"{cmd} --help exits 0", r.returncode == 0,
              f"exit={r.returncode}")
        check(f"{cmd} --help prints options to stdout",
              "--" in r.stdout and not r.stderr,
              repr((r.stdout[:80], r.stderr[:80])))

        r = run([scd, cmd, "--definitely-not-a-flag"])
        check(f"{cmd} unknown flag exits 1", r.returncode == 1,
              f"exit={r.returncode}")
        check(f"{cmd} unknown flag points at --help on stderr",
              "--definitely-not-a-flag" in r.stderr and
              f"scd {cmd} --help" in r.stderr,
              repr(r.stderr[:160]))

    # Commands with required options must flag their absence as a usage
    # error (1), not a crash or a runtime error.
    for cmd in ("generate", "info", "fit", "eval", "resume", "serve"):
        r = run([scd, cmd])
        check(f"{cmd} missing required option exits 1",
              r.returncode == 1, f"exit={r.returncode}")
        check(f"{cmd} missing required option diagnoses on stderr",
              "required" in r.stderr, repr(r.stderr[:160]))

    # Runtime/data errors are distinct from usage errors.
    r = run([scd, "serve", "--checkpoint", "/no/such/checkpoint.bin"])
    check("data error exits 2", r.returncode == 2, f"exit={r.returncode}")
    check("data error diagnoses on stderr", "error" in r.stderr,
          repr(r.stderr[:120]))

    # `scd run` backend selection: an unknown backend is a usage error
    # (1), an unreadable fault plan a data error (2) — the same split
    # every other subcommand follows.
    r = run([scd, "run", "--backend", "bogus"])
    check("run unknown backend exits 1", r.returncode == 1,
          f"exit={r.returncode}")
    check("run unknown backend diagnoses on stderr", "bogus" in r.stderr,
          repr(r.stderr[:120]))
    r = run([scd, "run", "--backend", "sim", "--fault-plan",
             "/no/such/plan.json"])
    check("run missing fault plan exits 2", r.returncode == 2,
          f"exit={r.returncode}")
    check("run missing fault plan diagnoses on stderr",
          "error" in r.stderr, repr(r.stderr[:120]))

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall CLI contract checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
