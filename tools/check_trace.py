#!/usr/bin/env python3
"""Validate an exported Chrome trace_event JSON file.

Usage:
    check_trace.py <trace.json>
    check_trace.py --generate <cmd> [args...] -- <trace.json>

With --generate, everything up to `--` is run as a command first (it is
expected to write the trace file named after the `--`); the file is then
validated. This is how ctest exercises the full export path: run
`cluster_sim --trace-out <tmp>` and validate what came out.

Checks:
  * the file parses as JSON and has a `traceEvents` array;
  * every event has the fields its phase requires (`ph`, `pid`, `ts`
    and `name` for B/E; metadata M events name a process or thread);
  * per (pid, tid) lane, timestamps are non-decreasing and every B has
    a matching E with the same name (properly nested, nothing left
    open at the end);
  * durations are non-negative and timestamps are finite numbers.

Exits 0 when the trace is valid, 1 with a per-problem report otherwise.
"""
import json
import math
import subprocess
import sys
from pathlib import Path


def validate(path):
    """Return a list of human-readable problems (empty == valid)."""
    problems = []
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as e:
        return [f"cannot read '{path}': {e}"]
    except json.JSONDecodeError as e:
        return [f"'{path}' is not valid JSON "
                f"(line {e.lineno}, column {e.colno}: {e.msg})"]

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level must be an object with a 'traceEvents' array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]

    # Per-lane open-span stack and timestamp high-water mark.
    stacks = {}
    last_ts = {}
    begin_end = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("B", "E", "M"):
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                problems.append(
                    f"{where}: metadata event names neither a process "
                    f"nor a thread ({ev.get('name')!r})")
            elif not isinstance(ev.get("args", {}).get("name"), str):
                problems.append(f"{where}: metadata event has no args.name")
            continue

        begin_end += 1
        name = ev.get("name")
        ts = ev.get("ts")
        lane = (ev.get("pid"), ev.get("tid"))
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: B/E event has no name")
            continue
        if (not isinstance(ts, (int, float)) or isinstance(ts, bool)
                or not math.isfinite(ts)):
            problems.append(f"{where}: '{name}' has bad ts {ts!r}")
            continue
        if None in lane:
            problems.append(f"{where}: '{name}' is missing pid or tid")
            continue
        if ts < last_ts.get(lane, float("-inf")):
            problems.append(
                f"{where}: '{name}' goes back in time on lane "
                f"pid={lane[0]} tid={lane[1]} "
                f"({ts} after {last_ts[lane]})")
        last_ts[lane] = ts

        stack = stacks.setdefault(lane, [])
        if ph == "B":
            stack.append(name)
        else:  # "E"
            if not stack:
                problems.append(
                    f"{where}: E '{name}' on lane pid={lane[0]} "
                    f"tid={lane[1]} with no open span")
            elif stack[-1] != name:
                problems.append(
                    f"{where}: E '{name}' does not close the innermost "
                    f"open span '{stack[-1]}' on lane pid={lane[0]} "
                    f"tid={lane[1]}")
                stack.pop()
            else:
                stack.pop()

    for lane, stack in stacks.items():
        for name in stack:
            problems.append(
                f"span '{name}' on lane pid={lane[0]} tid={lane[1]} "
                f"was never closed")
    if begin_end == 0:
        problems.append("trace contains no B/E span events")
    return problems


def main(argv):
    if len(argv) >= 2 and argv[1] == "--generate":
        try:
            sep = argv.index("--")
        except ValueError:
            print("check_trace: --generate needs `-- <trace.json>`",
                  file=sys.stderr)
            return 2
        command, rest = argv[2:sep], argv[sep + 1:]
        if not command or len(rest) != 1:
            print("check_trace: usage: check_trace.py --generate <cmd> "
                  "[args...] -- <trace.json>", file=sys.stderr)
            return 2
        path = rest[0]
        result = subprocess.run(command, stdout=subprocess.DEVNULL)
        if result.returncode != 0:
            print(f"check_trace: generator exited {result.returncode}",
                  file=sys.stderr)
            return 1
    elif len(argv) == 2:
        path = argv[1]
    else:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    problems = validate(path)
    if problems:
        print(f"check_trace: '{path}' is not a valid Chrome trace:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"check_trace: '{path}' is a valid Chrome trace")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
