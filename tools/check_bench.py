#!/usr/bin/env python3
"""Diff a fresh bench run against its committed JSON baseline.

Usage:
    check_bench.py --bench <binary> --baseline <committed.json> \
        [--tolerance 0.20] [--tolerance-override metric=pct ...]

Runs `<binary> --json <tmpfile>`, then recursively compares every numeric
field against the committed baseline. Exits 1 if any value drifts by more
than `tolerance` relative to the baseline (or if the document structure
changed). Non-numeric fields must match exactly. Each failure names the
metric that drifted and by how much.

`--tolerance-override metric=pct` (repeatable) widens or tightens the
bound for individual metrics: `metric` matches a field's leaf key or a
substring of its dotted path, `pct` is the relative drift fraction (e.g.
`--tolerance-override perplexity=0.02` holds perplexity to 2% while the
timing fields keep the global tolerance).

The modeled benches are deterministic (fixed seeds, virtual time), so any
drift means a code change altered the cost model or the replayed traffic
— exactly what this check is for. Baselines are regenerated on purpose
with `<binary> --json <baseline>` when a change is intentional.
"""
import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def tolerance_for(path, key, default, overrides):
    """Pick the tolerance for one field: an override whose name equals the
    leaf key or appears in the dotted path wins; otherwise the default."""
    for name, tol in overrides.items():
        if name == key or name in path:
            return tol
    return default


def compare(baseline, fresh, tolerance, path, failures, overrides, key=""):
    """Recursively compare `fresh` against `baseline`, appending human-
    readable drift descriptions to `failures`."""
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict):
            failures.append(f"{path}: expected object, got {type(fresh).__name__}")
            return
        for key in baseline:
            if key not in fresh:
                failures.append(f"{path}.{key}: missing from fresh run")
            else:
                compare(baseline[key], fresh[key], tolerance, f"{path}.{key}",
                        failures, overrides, key)
        for key in fresh:
            if key not in baseline:
                failures.append(f"{path}.{key}: not in baseline (regenerate it?)")
    elif isinstance(baseline, list):
        if not isinstance(fresh, list):
            failures.append(f"{path}: expected array, got {type(fresh).__name__}")
            return
        if len(baseline) != len(fresh):
            failures.append(
                f"{path}: length {len(fresh)} != baseline {len(baseline)}")
            return
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            compare(b, f, tolerance, f"{path}[{i}]", failures, overrides, key)
    elif isinstance(baseline, bool) or not isinstance(baseline, (int, float)):
        if baseline != fresh:
            failures.append(f"{path}: '{fresh}' != baseline '{baseline}'")
    else:
        if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
            failures.append(f"{path}: expected number, got {fresh!r}")
            return
        tolerance = tolerance_for(path, key, tolerance, overrides)
        if baseline == 0:
            # Exact-zero fields (e.g. parity_max_rel_err) have no scale to
            # be relative against; any nonzero value is a failure.
            if fresh != 0:
                failures.append(f"{path}: {fresh} != baseline 0")
            return
        drift = abs(fresh - baseline) / abs(baseline)
        if drift > tolerance:
            failures.append(
                f"{path}: {fresh:g} drifted {drift:.1%} from baseline "
                f"{baseline:g} (tolerance {tolerance:.0%})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True,
                        help="bench binary to run with --json")
    parser.add_argument("--baseline", required=True,
                        help="committed JSON baseline to diff against")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="max allowed relative drift (default 0.20)")
    parser.add_argument("--tolerance-override", action="append", default=[],
                        metavar="METRIC=PCT",
                        help="per-metric drift bound, e.g. perplexity=0.02; "
                             "METRIC matches a leaf key or path substring "
                             "(repeatable)")
    args = parser.parse_args()

    overrides = {}
    for spec in args.tolerance_override:
        name, sep, pct = spec.partition("=")
        try:
            if not sep or not name:
                raise ValueError
            overrides[name] = float(pct)
        except ValueError:
            print(f"check_bench: bad --tolerance-override '{spec}' "
                  f"(expected METRIC=PCT, e.g. perplexity=0.02)",
                  file=sys.stderr)
            return 2

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        # A missing baseline is a skip, not a failure: new benches land
        # before their first committed baseline, and a fresh checkout
        # must not fail the build for it.
        print(f"check_bench: SKIP {Path(args.bench).name} — baseline "
              f"'{baseline_path}' not committed yet; generate it with "
              f"`{Path(args.bench).name} --json {baseline_path.name}`")
        return 0
    try:
        baseline = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as e:
        print(f"check_bench: baseline '{baseline_path}' is not valid JSON "
              f"(line {e.lineno}, column {e.colno}: {e.msg})",
              file=sys.stderr)
        return 1

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = Path(tmp.name)
    try:
        result = subprocess.run([args.bench, "--json", str(fresh_path)],
                                stdout=subprocess.DEVNULL)
        if result.returncode != 0:
            print(f"check_bench: '{args.bench}' exited {result.returncode}",
                  file=sys.stderr)
            return 1
        try:
            fresh = json.loads(fresh_path.read_text())
        except json.JSONDecodeError as e:
            print(f"check_bench: '{args.bench}' wrote invalid JSON "
                  f"(line {e.lineno}, column {e.colno}: {e.msg})",
                  file=sys.stderr)
            return 1
    finally:
        fresh_path.unlink(missing_ok=True)

    failures = []
    compare(baseline, fresh, args.tolerance, "$", failures, overrides)
    name = Path(args.bench).name
    if failures:
        print(f"check_bench: {name} drifted from {baseline_path.name}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"check_bench: {name} matches {baseline_path.name} "
          f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
