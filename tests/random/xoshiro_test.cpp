#include "random/xoshiro.h"

#include <gtest/gtest.h>

#include <set>

namespace scd::rng {
namespace {

TEST(XoshiroTest, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(XoshiroTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(XoshiroTest, JumpGivesDisjointStream) {
  Xoshiro256 base(7);
  Xoshiro256 jumped = base;
  jumped.jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(base());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(seen.count(jumped()), 0u) << "streams overlapped at " << i;
  }
}

TEST(XoshiroTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(99);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    min = std::min(min, u);
    max = std::max(max, u);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(XoshiroTest, NextBelowRespectsBound) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(XoshiroTest, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(XoshiroTest, SplitMatchesManualJumps) {
  Xoshiro256 base(77);
  Xoshiro256 manual = base;
  manual.jump();
  manual.jump();
  manual.jump();
  Xoshiro256 split = base.split(2);  // 3 jumps total (n + 1)
  EXPECT_EQ(manual, split);
}

TEST(XoshiroTest, SplitmixIsStable) {
  std::uint64_t s = 0;
  // Known first output of SplitMix64 from seed 0.
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace scd::rng
