#include "random/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "util/error.h"

namespace scd::rng {
namespace {

struct Moments {
  double mean = 0.0;
  double var = 0.0;
};

template <typename Draw>
Moments sample_moments(int n, Draw&& draw) {
  std::vector<double> xs(n);
  for (double& x : xs) x = draw();
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(n);
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(n - 1);
  return {mean, var};
}

TEST(DistributionsTest, StandardNormalMoments) {
  Xoshiro256 rng(42);
  const Moments m =
      sample_moments(200000, [&] { return sample_standard_normal(rng); });
  EXPECT_NEAR(m.mean, 0.0, 0.01);
  EXPECT_NEAR(m.var, 1.0, 0.02);
}

// Gamma(shape, 1): mean = shape, var = shape. Sweep shapes both below and
// above 1 to exercise the boost path and the Marsaglia-Tsang path.
class GammaMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaMomentsTest, MeanAndVarianceMatch) {
  const double shape = GetParam();
  Xoshiro256 rng(7);
  const Moments m =
      sample_moments(200000, [&] { return sample_gamma(rng, shape); });
  EXPECT_NEAR(m.mean, shape, 0.03 * std::max(1.0, shape));
  EXPECT_NEAR(m.var, shape, 0.08 * std::max(1.0, shape));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaMomentsTest,
                         ::testing::Values(0.05, 0.3, 0.9, 1.0, 2.5, 10.0));

TEST(DistributionsTest, GammaScaleApplies) {
  Xoshiro256 rng(8);
  const Moments m =
      sample_moments(100000, [&] { return sample_gamma(rng, 2.0, 3.0); });
  EXPECT_NEAR(m.mean, 6.0, 0.15);
}

TEST(DistributionsTest, GammaAlwaysPositive) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(sample_gamma(rng, 0.01), 0.0);
  }
}

TEST(DistributionsTest, GammaRejectsBadShape) {
  Xoshiro256 rng(1);
  EXPECT_THROW(sample_gamma(rng, 0.0), scd::UsageError);
  EXPECT_THROW(sample_gamma(rng, -1.0), scd::UsageError);
}

// Beta(a, b): mean a/(a+b), var ab/((a+b)^2 (a+b+1)).
class BetaMomentsTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BetaMomentsTest, MomentsMatch) {
  const auto [a, b] = GetParam();
  Xoshiro256 rng(21);
  const Moments m =
      sample_moments(150000, [&] { return sample_beta(rng, a, b); });
  const double mean = a / (a + b);
  const double var = a * b / ((a + b) * (a + b) * (a + b + 1));
  EXPECT_NEAR(m.mean, mean, 0.01);
  EXPECT_NEAR(m.var, var, 0.1 * var + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Params, BetaMomentsTest,
    ::testing::Values(std::pair{1.0, 1.0}, std::pair{5.0, 1.0},
                      std::pair{0.5, 0.5}, std::pair{2.0, 8.0}));

TEST(DistributionsTest, ExponentialMean) {
  Xoshiro256 rng(13);
  const Moments m =
      sample_moments(100000, [&] { return sample_exponential(rng, 4.0); });
  EXPECT_NEAR(m.mean, 0.25, 0.005);
}

TEST(DistributionsTest, DirichletSumsToOneAndMatchesMean) {
  Xoshiro256 rng(31);
  constexpr std::size_t kDim = 5;
  std::vector<double> acc(kDim, 0.0);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    std::vector<double> x(kDim);
    sample_dirichlet(rng, 0.5, x);
    double sum = 0.0;
    for (std::size_t j = 0; j < kDim; ++j) {
      ASSERT_GE(x[j], 0.0);
      sum += x[j];
      acc[j] += x[j];
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
  for (double a : acc) {
    EXPECT_NEAR(a / kDraws, 1.0 / kDim, 0.01);
  }
}

TEST(DistributionsTest, GeneralDirichletMatchesAlphaRatios) {
  Xoshiro256 rng(32);
  const std::vector<double> alpha = {1.0, 2.0, 7.0};
  std::vector<double> acc(3, 0.0);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    std::vector<double> x(3);
    sample_dirichlet(rng, alpha, x);
    for (int j = 0; j < 3; ++j) acc[static_cast<std::size_t>(j)] += x[static_cast<std::size_t>(j)];
  }
  EXPECT_NEAR(acc[0] / kDraws, 0.1, 0.01);
  EXPECT_NEAR(acc[1] / kDraws, 0.2, 0.01);
  EXPECT_NEAR(acc[2] / kDraws, 0.7, 0.01);
}

TEST(DistributionsTest, CategoricalFollowsProbabilities) {
  Xoshiro256 rng(55);
  const std::vector<double> probs = {0.1, 0.6, 0.3};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[sample_categorical(rng, probs)];
  }
  EXPECT_NEAR(counts[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / double(kDraws), 0.3, 0.01);
}

}  // namespace
}  // namespace scd::rng
