#include "random/alias_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"

namespace scd::rng {
namespace {

TEST(AliasTableTest, EqualWeightsDegenerateToExactUniform) {
  // Vose with equal weights: every scaled bucket is exactly 1.0 in IEEE
  // arithmetic, so the coin never redirects — the table is a pure
  // pass-through of next_below. The minibatch distribution-equivalence
  // argument rests on this.
  const AliasTable t = AliasTable::uniform(37);
  ASSERT_EQ(t.size(), 37u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.prob(i), 1.0);
    EXPECT_EQ(t.alias(i), i);
  }
}

TEST(AliasTableTest, BucketsConserveProbabilityMass) {
  // Each index i receives prob[i] from bucket i plus (1 - prob[j]) from
  // every bucket j aliased to it; the reconstructed masses must match
  // the normalized input weights.
  const std::vector<double> w = {1.0, 5.0, 0.25, 2.75, 0.0, 7.0};
  const AliasTable t{std::span<const double>(w)};
  double sum = 0.0;
  for (const double x : w) sum += x;
  std::vector<double> mass(w.size(), 0.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    mass[i] += t.prob(i);
    if (t.prob(i) < 1.0) mass[t.alias(i)] += 1.0 - t.prob(i);
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(mass[i] / static_cast<double>(w.size()), w[i] / sum, 1e-12)
        << "index " << i;
  }
}

TEST(AliasTableTest, ZeroWeightIndexIsNeverDrawn) {
  const std::vector<double> w = {1.0, 0.0, 3.0};
  const AliasTable t{std::span<const double>(w)};
  Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_NE(t.sample(rng), 1u);
  }
}

TEST(AliasTableTest, SampleTracksWeightsWithinSamplingError) {
  const std::vector<double> w = {2.0, 1.0, 4.0, 1.0};
  const AliasTable t{std::span<const double>(w)};
  Xoshiro256 rng(11);
  const int n = 200000;
  std::vector<int> counts(w.size(), 0);
  for (int i = 0; i < n; ++i) counts[t.sample(rng)]++;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expect = w[i] / 8.0;
    const double got = static_cast<double>(counts[i]) / n;
    // ~4 sigma of a binomial at n = 2e5.
    EXPECT_NEAR(got, expect, 4.0 * std::sqrt(expect * (1 - expect) / n))
        << "index " << i;
  }
}

TEST(AliasTableTest, ConstructionIsDeterministic) {
  const std::vector<double> w = {0.5, 3.0, 1.5, 0.25, 2.0};
  const AliasTable a{std::span<const double>(w)};
  const AliasTable b{std::span<const double>(w)};
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.prob(i), b.prob(i));
    EXPECT_EQ(a.alias(i), b.alias(i));
  }
}

TEST(AliasTableTest, RejectsDegenerateWeights) {
  EXPECT_THROW(AliasTable{std::span<const double>()}, UsageError);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(AliasTable{std::span<const double>(zero)}, UsageError);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(AliasTable{std::span<const double>(negative)}, UsageError);
}

}  // namespace
}  // namespace scd::rng
