#include "random/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/error.h"

namespace scd::rng {
namespace {

TEST(SamplingTest, WithoutReplacementGivesDistinctInRange) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = sample_without_replacement(rng, 50, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    ASSERT_EQ(unique.size(), 10u);
    for (std::uint64_t v : sample) ASSERT_LT(v, 50u);
  }
}

TEST(SamplingTest, WithoutReplacementFullSet) {
  Xoshiro256 rng(2);
  const auto sample = sample_without_replacement(rng, 8, 8);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(SamplingTest, WithoutReplacementIsUniformPerElement) {
  Xoshiro256 rng(3);
  constexpr std::uint64_t kN = 20;
  constexpr std::size_t kK = 5;
  constexpr int kTrials = 40000;
  std::vector<int> counts(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (std::uint64_t v : sample_without_replacement(rng, kN, kK)) {
      ++counts[v];
    }
  }
  // Each element has inclusion probability k/n = 0.25.
  for (int c : counts) {
    EXPECT_NEAR(c / double(kTrials), 0.25, 0.02);
  }
}

TEST(SamplingTest, OverdrawThrows) {
  Xoshiro256 rng(4);
  EXPECT_THROW(sample_without_replacement(rng, 3, 4), scd::UsageError);
}

TEST(SamplingTest, ExcludingSkipsTheValue) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    const auto sample =
        sample_without_replacement_excluding(rng, 10, 9, 4);
    ASSERT_EQ(sample.size(), 9u);
    for (std::uint64_t v : sample) {
      ASSERT_NE(v, 4u);
      ASSERT_LT(v, 10u);
    }
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    ASSERT_EQ(unique.size(), 9u);
  }
}

TEST(SamplingTest, ExcludingIsUniformOverRemainder) {
  Xoshiro256 rng(6);
  constexpr int kTrials = 50000;
  std::vector<int> counts(6, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (std::uint64_t v : sample_without_replacement_excluding(rng, 6, 2, 0)) {
      ++counts[v];
    }
  }
  EXPECT_EQ(counts[0], 0);
  for (std::size_t v = 1; v < 6; ++v) {
    EXPECT_NEAR(counts[v] / double(kTrials), 0.4, 0.02);
  }
}

TEST(SamplingTest, DistinctPairCanonicalAndUniform) {
  Xoshiro256 rng(7);
  constexpr int kTrials = 60000;
  std::vector<int> counts(6, 0);  // pairs over n=4: (0,1)(0,2)(0,3)(1,2)(1,3)(2,3)
  auto index = [](std::uint64_t a, std::uint64_t b) -> std::uint64_t {
    if (a == 0) return b - 1;
    if (a == 1) return b + 1;
    return 5;
  };
  for (int t = 0; t < kTrials; ++t) {
    const auto [a, b] = sample_distinct_pair(rng, 4);
    ASSERT_LT(a, b);
    ASSERT_LT(b, 4u);
    ++counts[index(a, b)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / double(kTrials), 1.0 / 6.0, 0.01);
  }
}

TEST(SamplingTest, ShufflePreservesMultiset) {
  Xoshiro256 rng(8);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 6};
  std::vector<int> shuffled = values;
  shuffle(rng, shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(SamplingTest, ShuffleFirstPositionIsUniform) {
  Xoshiro256 rng(9);
  constexpr int kTrials = 60000;
  std::vector<int> first_counts(5, 0);
  for (int t = 0; t < kTrials; ++t) {
    std::vector<int> v = {0, 1, 2, 3, 4};
    shuffle(rng, v);
    ++first_counts[v[0]];
  }
  for (int c : first_counts) {
    EXPECT_NEAR(c / double(kTrials), 0.2, 0.015);
  }
}

}  // namespace
}  // namespace scd::rng
