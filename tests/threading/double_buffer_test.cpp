#include "threading/double_buffer.h"

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

namespace scd::threading {
namespace {

struct EventLog {
  std::mutex mu;
  std::vector<std::string> events;
  void add(const std::string& e) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(e);
  }
};

TEST(DoubleBufferTest, SerialModeRunsLoadComputeInOrder) {
  ThreadPool pool(2);
  DoubleBufferPipeline pipe(pool);
  EventLog log;
  pipe.run(
      3, /*pipelined=*/false,
      [&](std::uint64_t c) { log.add("L" + std::to_string(c)); },
      [&](std::uint64_t c) { log.add("C" + std::to_string(c)); });
  EXPECT_EQ(log.events,
            (std::vector<std::string>{"L0", "C0", "L1", "C1", "L2", "C2"}));
}

TEST(DoubleBufferTest, PipelinedModeCompletesAllChunks) {
  ThreadPool pool(2);
  DoubleBufferPipeline pipe(pool);
  std::vector<int> loaded(8, 0);
  std::vector<int> computed(8, 0);
  pipe.run(
      8, /*pipelined=*/true,
      [&](std::uint64_t c) { loaded[c] = 1; },
      [&](std::uint64_t c) {
        // A chunk can only be computed once loaded.
        EXPECT_EQ(loaded[c], 1);
        computed[c] = 1;
      });
  for (int c : computed) EXPECT_EQ(c, 1);
}

TEST(DoubleBufferTest, PipelinedLoadNeverOvertakesByMoreThanOne) {
  ThreadPool pool(2);
  DoubleBufferPipeline pipe(pool);
  std::atomic<std::int64_t> last_computed{-1};
  pipe.run(
      16, /*pipelined=*/true,
      [&](std::uint64_t c) {
        // load(c) may run while compute(c-1) is in flight, never further.
        EXPECT_GE(static_cast<std::int64_t>(c),
                  last_computed.load());
        EXPECT_LE(static_cast<std::int64_t>(c), last_computed.load() + 2);
      },
      [&](std::uint64_t c) {
        last_computed.store(static_cast<std::int64_t>(c));
      });
}

// Stress the two-slot handshake with real data: the loader writes a
// per-chunk payload into buffer[c % 2] while the previous chunk's
// compute reads the other slot — exactly the access pattern update_phi
// prefetching relies on. Any missing ordering between load(c+1) and
// compute(c+1), or a slot reused before its compute finished, shows up
// as a wrong payload here (and as a data race under the tsan preset,
// which runs this suite via the threading label).
TEST(DoubleBufferTest, PipelinedSlotReuseDeliversEveryPayload) {
  ThreadPool pool(2);
  DoubleBufferPipeline pipe(pool);
  constexpr std::uint64_t kChunks = 512;
  std::uint64_t slots[2] = {0, 0};  // plain memory on purpose: TSan bait
  std::uint64_t sum = 0;
  std::uint64_t expected = 0;
  for (std::uint64_t c = 0; c < kChunks; ++c) expected += c * 31 + 7;
  pipe.run(
      kChunks, /*pipelined=*/true,
      [&](std::uint64_t c) { slots[c % 2] = c * 31 + 7; },
      [&](std::uint64_t c) {
        ASSERT_EQ(slots[c % 2], c * 31 + 7);
        sum += slots[c % 2];
      });
  EXPECT_EQ(sum, expected);
}

TEST(DoubleBufferTest, ZeroChunksIsNoop) {
  ThreadPool pool(2);
  DoubleBufferPipeline pipe(pool);
  bool touched = false;
  pipe.run(0, true, [&](std::uint64_t) { touched = true; },
           [&](std::uint64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(DoubleBufferTest, SingleThreadPoolFallsBackToSerial) {
  ThreadPool pool(1);
  DoubleBufferPipeline pipe(pool);
  EventLog log;
  pipe.run(
      2, /*pipelined=*/true,
      [&](std::uint64_t c) { log.add("L" + std::to_string(c)); },
      [&](std::uint64_t c) { log.add("C" + std::to_string(c)); });
  EXPECT_EQ(log.events,
            (std::vector<std::string>{"L0", "C0", "L1", "C1"}));
}

}  // namespace
}  // namespace scd::threading
