#include "threading/double_buffer.h"

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

namespace scd::threading {
namespace {

struct EventLog {
  std::mutex mu;
  std::vector<std::string> events;
  void add(const std::string& e) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(e);
  }
};

TEST(DoubleBufferTest, SerialModeRunsLoadComputeInOrder) {
  ThreadPool pool(2);
  DoubleBufferPipeline pipe(pool);
  EventLog log;
  pipe.run(
      3, /*pipelined=*/false,
      [&](std::uint64_t c) { log.add("L" + std::to_string(c)); },
      [&](std::uint64_t c) { log.add("C" + std::to_string(c)); });
  EXPECT_EQ(log.events,
            (std::vector<std::string>{"L0", "C0", "L1", "C1", "L2", "C2"}));
}

TEST(DoubleBufferTest, PipelinedModeCompletesAllChunks) {
  ThreadPool pool(2);
  DoubleBufferPipeline pipe(pool);
  std::vector<int> loaded(8, 0);
  std::vector<int> computed(8, 0);
  pipe.run(
      8, /*pipelined=*/true,
      [&](std::uint64_t c) { loaded[c] = 1; },
      [&](std::uint64_t c) {
        // A chunk can only be computed once loaded.
        EXPECT_EQ(loaded[c], 1);
        computed[c] = 1;
      });
  for (int c : computed) EXPECT_EQ(c, 1);
}

TEST(DoubleBufferTest, PipelinedLoadNeverOvertakesByMoreThanOne) {
  ThreadPool pool(2);
  DoubleBufferPipeline pipe(pool);
  std::atomic<std::int64_t> last_computed{-1};
  pipe.run(
      16, /*pipelined=*/true,
      [&](std::uint64_t c) {
        // load(c) may run while compute(c-1) is in flight, never further.
        EXPECT_GE(static_cast<std::int64_t>(c),
                  last_computed.load());
        EXPECT_LE(static_cast<std::int64_t>(c), last_computed.load() + 2);
      },
      [&](std::uint64_t c) {
        last_computed.store(static_cast<std::int64_t>(c));
      });
}

TEST(DoubleBufferTest, ZeroChunksIsNoop) {
  ThreadPool pool(2);
  DoubleBufferPipeline pipe(pool);
  bool touched = false;
  pipe.run(0, true, [&](std::uint64_t) { touched = true; },
           [&](std::uint64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(DoubleBufferTest, SingleThreadPoolFallsBackToSerial) {
  ThreadPool pool(1);
  DoubleBufferPipeline pipe(pool);
  EventLog log;
  pipe.run(
      2, /*pipelined=*/true,
      [&](std::uint64_t c) { log.add("L" + std::to_string(c)); },
      [&](std::uint64_t c) { log.add("C" + std::to_string(c)); });
  EXPECT_EQ(log.events,
            (std::vector<std::string>{"L0", "C0", "L1", "C1"}));
}

}  // namespace
}  // namespace scd::threading
