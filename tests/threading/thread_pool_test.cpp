#include "threading/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "threading/parallel.h"
#include "util/error.h"

namespace scd::threading {
namespace {

TEST(ChunkBoundsTest, PartitionCoversRangeExactly) {
  for (unsigned threads : {1u, 2u, 3u, 7u, 16u}) {
    for (std::uint64_t n : {0ull, 1ull, 5ull, 16ull, 100ull, 101ull}) {
      std::uint64_t covered = 0;
      std::uint64_t prev_end = 0;
      for (unsigned t = 0; t < threads; ++t) {
        const auto [lo, hi] = ThreadPool::chunk_bounds(0, n, t, threads);
        EXPECT_EQ(lo, prev_end) << "gap at thread " << t;
        EXPECT_LE(lo, hi);
        covered += hi - lo;
        prev_end = hi;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ChunkBoundsTest, BalancedWithinOne) {
  const auto [lo0, hi0] = ThreadPool::chunk_bounds(0, 10, 0, 3);
  const auto [lo2, hi2] = ThreadPool::chunk_bounds(0, 10, 2, 3);
  EXPECT_LE((hi0 - lo0) - (hi2 - lo2), 1u);
}

class ThreadPoolParamTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadPoolParamTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(0, 1000,
                    [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                      for (std::uint64_t i = lo; i < hi; ++i) {
                        visits[i].fetch_add(1);
                      }
                    });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST_P(ThreadPoolParamTest, EmptyRangeIsNoop) {
  ThreadPool pool(GetParam());
  bool called = false;
  pool.parallel_for(5, 5, [&](unsigned, std::uint64_t, std::uint64_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST_P(ThreadPoolParamTest, ExceptionsPropagate) {
  ThreadPool pool(GetParam());
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](unsigned, std::uint64_t lo, std::uint64_t) {
                          if (lo == 0) throw scd::Error("worker failed");
                        }),
      scd::Error);
  // Pool remains usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST_P(ThreadPoolParamTest, RunOnAllReachesEveryThread) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> hits(pool.num_threads());
  pool.run_on_all([&](unsigned id) { hits[id].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ThreadPoolParamTest, ParallelReduceMatchesSerialSum) {
  ThreadPool pool(GetParam());
  std::vector<double> values(5000);
  std::iota(values.begin(), values.end(), 1.0);
  const double expected =
      std::accumulate(values.begin(), values.end(), 0.0);
  const double total = parallel_reduce<double>(
      pool, 0, values.size(), 0.0,
      [&](double& acc, std::uint64_t i) { acc += values[i]; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(total, expected);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolParamTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ThreadPoolTest, ZeroThreadsRejected) {
  EXPECT_THROW(ThreadPool(0), scd::UsageError);
}

TEST(ThreadPoolTest, ManySmallLaunchesDoNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int i = 0; i < 500; ++i) {
    pool.parallel_for(0, 4, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
      total += static_cast<int>(hi - lo);
    });
  }
  EXPECT_EQ(total.load(), 2000);
}

}  // namespace
}  // namespace scd::threading
