#include "threading/snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace scd::threading {
namespace {

/// Payload that counts live instances, so retirement (delete after the
/// last reader lets go) is observable.
struct Tracked {
  static std::atomic<int> live;
  explicit Tracked(int v) : value(v) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
  int value;
};
std::atomic<int> Tracked::live{0};

TEST(SnapshotManagerTest, EmptyBeforeFirstPublish) {
  SnapshotManager<int> manager;
  const auto ref = manager.acquire();
  EXPECT_FALSE(ref);
  EXPECT_EQ(ref.get(), nullptr);
  EXPECT_EQ(manager.epoch(), 0u);
}

TEST(SnapshotManagerTest, PublishMakesSnapshotVisible) {
  SnapshotManager<int> manager;
  manager.publish(std::make_unique<const int>(42));
  const auto ref = manager.acquire();
  ASSERT_TRUE(ref);
  EXPECT_EQ(*ref, 42);
  EXPECT_EQ(manager.epoch(), 1u);
}

TEST(SnapshotManagerTest, ConstructorPublishesInitialSnapshot) {
  SnapshotManager<int> manager(std::make_unique<const int>(7));
  EXPECT_EQ(manager.epoch(), 1u);
  EXPECT_EQ(*manager.acquire(), 7);
}

TEST(SnapshotManagerTest, PublishNullRejected) {
  SnapshotManager<int> manager;
  EXPECT_THROW(manager.publish(nullptr), scd::UsageError);
}

TEST(SnapshotManagerTest, RepublishRetiresPreviousSnapshot) {
  Tracked::live.store(0);
  {
    SnapshotManager<Tracked> manager;
    manager.publish(std::make_unique<const Tracked>(1));
    EXPECT_EQ(Tracked::live.load(), 1);
    manager.publish(std::make_unique<const Tracked>(2));
    // No reader held the first snapshot, so the publish retired it.
    EXPECT_EQ(Tracked::live.load(), 1);
    EXPECT_EQ(manager.acquire()->value, 2);
  }
  // Destructor releases the remaining snapshot.
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(SnapshotManagerTest, LiveReaderKeepsItsSnapshotThroughPublishes) {
  Tracked::live.store(0);
  SnapshotManager<Tracked> manager;
  manager.publish(std::make_unique<const Tracked>(1));
  auto held = manager.acquire();

  // Retire of the held snapshot must wait for the reader, so it runs on
  // a separate publisher thread while we observe both generations live.
  std::thread publisher(
      [&] { manager.publish(std::make_unique<const Tracked>(2)); });
  while (manager.epoch() != 2) std::this_thread::yield();
  EXPECT_EQ(held->value, 1);
  EXPECT_EQ(Tracked::live.load(), 2);
  EXPECT_EQ(manager.acquire()->value, 2);

  held = {};  // release; the publisher's drain can now finish
  publisher.join();
  EXPECT_EQ(Tracked::live.load(), 1);
}

TEST(SnapshotManagerTest, RefMoveTransfersOwnership) {
  SnapshotManager<int> manager;
  manager.publish(std::make_unique<const int>(5));
  auto a = manager.acquire();
  auto b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): post-move probe
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, 5);
  SnapshotManager<int>::Ref c;
  c = std::move(b);
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, 5);
}

// The headline concurrency property: readers hammer acquire() while a
// writer publishes many generations; every observed snapshot is
// coherent (value == generation stamp), nothing is read after free
// (asan would catch it), and no acquire ever stalls. Run under the tsan
// preset this is also the data-race proof.
constexpr std::uint64_t kStampMask = 0x5ca1ab1e5ca1ab1eULL;

TEST(SnapshotManagerTest, ConcurrentPublishAndReadHammering) {
  struct Stamped {
    explicit Stamped(std::uint64_t g) : generation(g), check(g ^ kStampMask) {}
    std::uint64_t generation;
    std::uint64_t check;
  };

  SnapshotManager<Stamped> manager;
  manager.publish(std::make_unique<const Stamped>(0));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  constexpr unsigned kReaders = 4;
  constexpr std::uint64_t kGenerations = 400;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_seen = 0;
      while (!stop.load()) {
        const auto ref = manager.acquire();
        ASSERT_TRUE(ref);
        // Coherent: both fields from the same generation.
        ASSERT_EQ(ref->check, ref->generation ^ kStampMask);
        // Monotone: generations never go backwards for one reader.
        ASSERT_GE(ref->generation, last_seen);
        last_seen = ref->generation;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint64_t g = 1; g <= kGenerations; ++g) {
    manager.publish(std::make_unique<const Stamped>(g));
  }
  // On a loaded (or single-CPU) box the readers may not have been
  // scheduled at all yet — keep the final snapshot live until every
  // reader has observed at least one generation, so the assertions
  // actually exercise the swap.
  while (reads.load() < kReaders) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(manager.epoch(), kGenerations + 1);
  EXPECT_EQ(manager.acquire()->generation, kGenerations);
  EXPECT_GT(reads.load(), 0u);
  // Readers may retry (bounded, once per racing publish) but never stall.
  EXPECT_EQ(manager.stalled_acquires(), 0u);
}

}  // namespace
}  // namespace scd::threading
