#include "core/grads.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "random/distributions.h"

namespace scd::core {
namespace {

constexpr std::size_t kK = 5;

struct Scenario {
  std::vector<float> row_a;  // [pi | phi_sum]
  std::vector<float> row_b;
  std::vector<float> beta;
  double delta = 0.01;
  LikelihoodTerms terms;
};

Scenario make_scenario(std::uint64_t seed) {
  rng::Xoshiro256 rng(seed);
  Scenario s;
  auto make_row = [&] {
    std::vector<double> pi(kK);
    rng::sample_dirichlet(rng, 0.7, pi);
    std::vector<float> row(kK + 1);
    for (std::size_t i = 0; i < kK; ++i) row[i] = static_cast<float>(pi[i]);
    row[kK] = static_cast<float>(0.5 + 3.0 * rng.next_double());
    return row;
  };
  s.row_a = make_row();
  s.row_b = make_row();
  s.beta.resize(kK);
  for (float& b : s.beta) {
    b = static_cast<float>(0.05 + 0.9 * rng.next_double());
  }
  s.terms.refresh(s.beta, s.delta);
  return s;
}

/// Brute-force Z_ab^(y) in pure double: the sum over (k, l) of f_ab(k, l).
double brute_force_z(const std::vector<double>& pi_a,
                     const std::vector<double>& pi_b,
                     const std::vector<double>& beta, double delta,
                     bool y) {
  double z = 0.0;
  for (std::size_t k = 0; k < kK; ++k) {
    for (std::size_t l = 0; l < kK; ++l) {
      const double r = (k == l) ? beta[k] : delta;
      z += pi_a[k] * pi_b[l] * (y ? r : (1.0 - r));
    }
  }
  return z;
}

std::vector<double> pi_of(const std::vector<float>& row) {
  return {row.begin(), row.begin() + kK};
}

std::vector<double> beta_of(const Scenario& s) {
  return {s.beta.begin(), s.beta.end()};
}

TEST(PairLikelihoodTest, MatchesBruteForceDoubleSum) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Scenario s = make_scenario(seed);
    for (bool y : {false, true}) {
      // The O(K) form assumes sum(pi_b) == 1; with float rows that holds
      // to ~1e-7, so the two forms agree to ~delta * 1e-7.
      EXPECT_NEAR(pair_likelihood(s.row_a, s.row_b, s.terms, y),
                  brute_force_z(pi_of(s.row_a), pi_of(s.row_b), beta_of(s),
                                s.delta, y),
                  1e-6)
          << "seed=" << seed << " y=" << y;
    }
  }
}

TEST(PairLikelihoodTest, ProbabilitiesOfBothOutcomesSumToOne) {
  const Scenario s = make_scenario(9);
  const double p1 = pair_likelihood(s.row_a, s.row_b, s.terms, true);
  const double p0 = pair_likelihood(s.row_a, s.row_b, s.terms, false);
  // Float rows sum to 1 only to ~1e-7, bounding p0 + p1 accordingly.
  EXPECT_NEAR(p0 + p1, 1.0, 1e-6);
}

/// log Z as a pure-double function of an explicit phi vector for vertex
/// a — float casts anywhere here would swallow the finite-difference
/// perturbation.
double log_z_of_phi(const Scenario& s, const std::vector<double>& phi,
                    bool y) {
  double sum = 0.0;
  for (double p : phi) sum += p;
  std::vector<double> pi_a(kK);
  for (std::size_t i = 0; i < kK; ++i) pi_a[i] = phi[i] / sum;
  return std::log(
      brute_force_z(pi_a, pi_of(s.row_b), beta_of(s), s.delta, y));
}

TEST(PhiGradTest, MatchesFiniteDifferenceOfLogLikelihood) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const Scenario s = make_scenario(seed);
    const double phi_sum = s.row_a[kK];
    std::vector<double> phi(kK);
    for (std::size_t i = 0; i < kK; ++i) {
      phi[i] = double(s.row_a[i]) * phi_sum;
    }
    for (bool y : {false, true}) {
      std::vector<double> grad(kK, 0.0);
      accumulate_phi_grad(s.row_a, s.row_b, s.terms, y, grad);
      for (std::size_t k = 0; k < kK; ++k) {
        const double h = 1e-5 * std::max(phi[k], 1e-3);
        std::vector<double> up = phi;
        std::vector<double> down = phi;
        up[k] += h;
        down[k] -= h;
        const double numeric =
            (log_z_of_phi(s, up, y) - log_z_of_phi(s, down, y)) / (2 * h);
        EXPECT_NEAR(grad[k], numeric,
                    5e-3 * std::max(1.0, std::abs(numeric)))
            << "seed=" << seed << " y=" << y << " k=" << k;
      }
    }
  }
}

/// log Z as a pure-double function of theta (beta recomputed from theta).
double log_z_of_theta(const Scenario& s, const std::vector<double>& theta,
                      bool y) {
  std::vector<double> beta(kK);
  for (std::size_t k = 0; k < kK; ++k) {
    beta[k] =
        theta[k * 2 + 1] / (theta[k * 2 + 0] + theta[k * 2 + 1]);
  }
  return std::log(
      brute_force_z(pi_of(s.row_a), pi_of(s.row_b), beta, s.delta, y));
}

TEST(ThetaGradTest, MatchesFiniteDifferenceOfLogLikelihood) {
  for (std::uint64_t seed : {21u, 22u}) {
    Scenario s = make_scenario(seed);
    rng::Xoshiro256 rng(seed * 100);
    std::vector<double> theta(kK * 2);
    for (double& t : theta) t = 0.5 + 2.0 * rng.next_double();
    // Keep beta consistent with theta so the analytic gradient applies.
    for (std::size_t k = 0; k < kK; ++k) {
      s.beta[k] = static_cast<float>(theta[k * 2 + 1] /
                                     (theta[k * 2 + 0] + theta[k * 2 + 1]));
    }
    s.terms.refresh(s.beta, s.delta);

    for (bool y : {false, true}) {
      std::vector<double> grad(kK * 2, 0.0);
      accumulate_theta_grad(s.row_a, s.row_b, s.terms, theta, y, grad);
      for (std::size_t j = 0; j < kK * 2; ++j) {
        const double h = 1e-6 * theta[j];
        std::vector<double> up = theta;
        std::vector<double> down = theta;
        up[j] += h;
        down[j] -= h;
        const double numeric =
            (log_z_of_theta(s, up, y) - log_z_of_theta(s, down, y)) /
            (2 * h);
        EXPECT_NEAR(grad[j], numeric,
                    2e-2 * std::max(0.5, std::abs(numeric)))
            << "seed=" << seed << " y=" << y << " j=" << j;
      }
    }
  }
}

TEST(ThetaGradTest, RatioPathMatchesDirectPath) {
  const Scenario s = make_scenario(31);
  rng::Xoshiro256 rng(77);
  std::vector<double> theta(kK * 2);
  for (double& t : theta) t = 0.5 + 2.0 * rng.next_double();

  // Direct accumulation over a mixed batch of pairs.
  std::vector<double> direct(kK * 2, 0.0);
  std::vector<double> ratio_link(kK, 0.0);
  std::vector<double> ratio_nonlink(kK, 0.0);
  for (int rep = 0; rep < 6; ++rep) {
    const bool y = rep % 2 == 0;
    const Scenario pair_s = make_scenario(100 + static_cast<std::uint64_t>(rep));
    Scenario with_beta = pair_s;
    with_beta.beta = s.beta;
    with_beta.terms.refresh(with_beta.beta, with_beta.delta);
    accumulate_theta_grad(with_beta.row_a, with_beta.row_b, with_beta.terms,
                          theta, y, direct);
    accumulate_theta_ratio(with_beta.row_a, with_beta.row_b,
                           with_beta.terms, y,
                           y ? std::span<double>(ratio_link)
                             : std::span<double>(ratio_nonlink));
  }
  std::vector<double> assembled(kK * 2, 0.0);
  theta_grad_from_ratios(ratio_link, ratio_nonlink, theta, assembled);
  for (std::size_t j = 0; j < kK * 2; ++j) {
    EXPECT_NEAR(assembled[j], direct[j],
                1e-12 * std::max(1.0, std::abs(direct[j])));
  }
}

TEST(UpdatePhiRowTest, KeepsRowNormalizedAndPositive) {
  Scenario s = make_scenario(41);
  std::vector<double> grad(kK, 0.0);
  accumulate_phi_grad(s.row_a, s.row_b, s.terms, true, grad);
  std::vector<float> row = s.row_a;
  update_phi_row(/*seed=*/5, /*iteration=*/3, /*vertex=*/7, row, grad,
                 /*scale=*/100.0, /*eps=*/0.01, /*alpha=*/0.1);
  double sum = 0.0;
  for (std::size_t i = 0; i < kK; ++i) {
    EXPECT_GT(row[i], 0.0f);
    sum += row[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  EXPECT_GT(row[kK], 0.0f);
}

TEST(UpdatePhiRowTest, DeterministicPerIterationAndVertex) {
  const Scenario s = make_scenario(42);
  std::vector<double> grad(kK, 0.25);
  std::vector<float> row1 = s.row_a;
  std::vector<float> row2 = s.row_a;
  update_phi_row(9, 2, 4, row1, grad, 10.0, 0.01, 0.1);
  update_phi_row(9, 2, 4, row2, grad, 10.0, 0.01, 0.1);
  EXPECT_EQ(row1, row2);
  std::vector<float> row3 = s.row_a;
  update_phi_row(9, 3, 4, row3, grad, 10.0, 0.01, 0.1);
  EXPECT_NE(row1, row3);  // different iteration -> different noise
}

TEST(UpdatePhiRowTest, ZeroStepIsIdentityUpToRenormalization) {
  const Scenario s = make_scenario(43);
  std::vector<double> grad(kK, 1000.0);  // irrelevant at eps = 0
  std::vector<float> row = s.row_a;
  update_phi_row(1, 0, 0, row, grad, 1.0, 0.0, 0.1);
  for (std::size_t i = 0; i < kK; ++i) {
    EXPECT_NEAR(row[i], s.row_a[i], 1e-6);
  }
}

TEST(UpdateThetaTest, StaysPositiveAndRefreshesBeta) {
  GlobalState g(4);
  Hyper hyper;
  hyper.num_communities = 4;
  g.init_random(3, hyper);
  const float beta_before = g.beta(0);
  std::vector<double> grad(8, -50.0);  // strong negative push
  update_theta(/*seed=*/3, /*iteration=*/0, g, grad, /*eps=*/0.05, 1.0,
               1.0);
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_GT(g.theta(k, 0), 0.0);
    EXPECT_GT(g.theta(k, 1), 0.0);
    EXPECT_GT(g.beta(k), 0.0f);
    EXPECT_LT(g.beta(k), 1.0f);
  }
  // Beta must reflect the new theta.
  EXPECT_NE(g.beta(0), beta_before);
}

}  // namespace
}  // namespace scd::core
