#include "core/hyper.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd::core {
namespace {

TEST(HyperTest, AutoAlphaIsOneOverK) {
  Hyper h;
  h.num_communities = 20;
  h.alpha = 0.0;
  EXPECT_DOUBLE_EQ(h.normalized_alpha(), 0.05);
  h.alpha = 0.3;
  EXPECT_DOUBLE_EQ(h.normalized_alpha(), 0.3);
}

TEST(HyperTest, ValidationCatchesBadValues) {
  Hyper h;
  h.delta = 0.0;
  EXPECT_THROW(h.validate(), scd::UsageError);
  h = Hyper{};
  h.eta0 = -1.0;
  EXPECT_THROW(h.validate(), scd::UsageError);
  h = Hyper{};
  h.num_communities = 0;
  EXPECT_THROW(h.validate(), scd::UsageError);
  EXPECT_NO_THROW(Hyper{}.validate());
}

TEST(HyperTest, SuggestedDeltaBelowDensity) {
  EXPECT_DOUBLE_EQ(suggested_delta(1e-3), 1e-4);
  EXPECT_DOUBLE_EQ(suggested_delta(0.0), 1e-10);  // floor
}

TEST(StepScheduleTest, DecaysMonotonicallyFromA) {
  StepSchedule s;
  EXPECT_DOUBLE_EQ(s.eps(0), s.a);
  double prev = s.eps(0);
  for (std::uint64_t t : {1ull, 10ull, 100ull, 10000ull}) {
    const double e = s.eps(t);
    EXPECT_LT(e, prev);
    EXPECT_GT(e, 0.0);
    prev = e;
  }
}

TEST(StepScheduleTest, RobbinsMonroExponentEnforced) {
  StepSchedule s;
  s.c = 0.5;  // too small: sum of eps^2 diverges
  EXPECT_THROW(s.validate(), scd::UsageError);
  s.c = 1.1;
  EXPECT_THROW(s.validate(), scd::UsageError);
  s.c = 1.0;
  EXPECT_NO_THROW(s.validate());
}

TEST(StepScheduleTest, HalvingPointControlledByB) {
  StepSchedule s;
  s.a = 1.0;
  s.b = 100.0;
  s.c = 1.0;
  EXPECT_NEAR(s.eps(100), 0.5, 1e-12);
}

}  // namespace
}  // namespace scd::core
