#include "core/parallel_sampler.h"

#include <gtest/gtest.h>

#include "core/sequential_sampler.h"
#include "tests/core/test_fixtures.h"

namespace scd::core {
namespace {

using testing::small_planted_fixture;

class ParallelEquivalenceTest : public ::testing::TestWithParam<unsigned> {};

// The derive_rng scheme makes the trajectory independent of the thread
// count; only floating-point reassociation in the theta reduction can
// differ, which is far below these tolerances.
TEST_P(ParallelEquivalenceTest, MatchesSequentialTrajectory) {
  auto f = small_planted_fixture(31415, 150, 4, 80);
  f.options.eval_interval = 20;
  SequentialSampler seq(f.split->training(), f.split.get(), f.hyper,
                        f.options);
  ParallelSampler par(f.split->training(), f.split.get(), f.hyper,
                      f.options, GetParam());
  seq.run(100);
  par.run(100);

  ASSERT_EQ(seq.history().size(), par.history().size());
  for (std::size_t i = 0; i < seq.history().size(); ++i) {
    EXPECT_EQ(seq.history()[i].iteration, par.history()[i].iteration);
    EXPECT_NEAR(par.history()[i].perplexity, seq.history()[i].perplexity,
                1e-7 * seq.history()[i].perplexity);
  }
  for (std::uint32_t k = 0; k < f.hyper.num_communities; ++k) {
    EXPECT_NEAR(par.global().beta(k), seq.global().beta(k), 1e-6);
  }
  const PiMatrix& ps = seq.pi();
  const PiMatrix& pp = par.pi();
  for (std::uint32_t v = 0; v < ps.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < ps.num_communities(); ++k) {
      ASSERT_NEAR(pp.pi(v, k), ps.pi(v, k), 1e-5) << "v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEquivalenceTest,
                         ::testing::Values(1u, 2u, 4u, 7u));

TEST(ParallelSamplerTest, PerplexityDropsWithMultipleThreads) {
  auto f = small_planted_fixture(2718);
  ParallelSampler sampler(f.split->training(), f.split.get(), f.hyper,
                          f.options, 4);
  const double initial = sampler.evaluate_perplexity();
  sampler.run(1000);
  EXPECT_LT(sampler.history().back().perplexity, 0.88 * initial);
}


TEST(ParallelSamplerTest, LinkAwareModeMatchesSequential) {
  auto f = small_planted_fixture(1357, 150, 4, 80);
  f.options.eval_interval = 20;
  f.options.neighbor_mode = NeighborMode::kLinkAware;
  SequentialSampler seq(f.split->training(), f.split.get(), f.hyper,
                        f.options);
  ParallelSampler par(f.split->training(), f.split.get(), f.hyper,
                      f.options, 4);
  seq.run(60);
  par.run(60);
  ASSERT_EQ(seq.history().size(), par.history().size());
  for (std::size_t i = 0; i < seq.history().size(); ++i) {
    EXPECT_NEAR(par.history()[i].perplexity, seq.history()[i].perplexity,
                1e-7 * seq.history()[i].perplexity);
  }
}

TEST(ParallelSamplerTest, ThreadCountIsReported) {
  auto f = small_planted_fixture(1, 60, 3, 30);
  ParallelSampler sampler(f.split->training(), f.split.get(), f.hyper,
                          f.options, 3);
  EXPECT_EQ(sampler.num_threads(), 3u);
}

}  // namespace
}  // namespace scd::core
