#include "core/state.h"

#include <gtest/gtest.h>

#include <cmath>

namespace scd::core {
namespace {

TEST(DeriveRngTest, DeterministicPerTuple) {
  auto a = derive_rng(1, rng_label::kPhiNoise, 10, 20);
  auto b = derive_rng(1, rng_label::kPhiNoise, 10, 20);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

TEST(DeriveRngTest, TupleComponentsAllMatter) {
  const std::uint64_t base = derive_rng(1, 2, 3, 4)();
  EXPECT_NE(derive_rng(9, 2, 3, 4)(), base);
  EXPECT_NE(derive_rng(1, 9, 3, 4)(), base);
  EXPECT_NE(derive_rng(1, 2, 9, 4)(), base);
  EXPECT_NE(derive_rng(1, 2, 3, 9)(), base);
}

TEST(PiMatrixTest, InitRowsAreNormalizedWithConsistentSum) {
  PiMatrix pi(50, 8);
  pi.init_random(123);
  for (std::uint32_t v = 0; v < 50; ++v) {
    double sum = 0.0;
    for (std::uint32_t k = 0; k < 8; ++k) {
      EXPECT_GT(pi.pi(v, k), 0.0f);
      sum += pi.pi(v, k);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_GT(pi.phi_sum(v), 0.0f);
  }
}

TEST(PiMatrixTest, InitIsDeterministicPerSeedAndVertex) {
  PiMatrix a(10, 4);
  a.init_random(7);
  PiMatrix b(10, 4);
  b.init_random(7);
  for (std::uint32_t v = 0; v < 10; ++v) {
    for (std::uint32_t k = 0; k < 5; ++k) {  // includes phi_sum slot
      EXPECT_EQ(a.row(v)[k], b.row(v)[k]);
    }
  }
  PiMatrix c(10, 4);
  c.init_random(8);
  EXPECT_NE(a.row(0)[0], c.row(0)[0]);
}

TEST(PiMatrixTest, InitRowStandaloneMatchesMatrix) {
  PiMatrix m(5, 6);
  m.init_random(99, 0.7);
  std::vector<float> row(7);
  init_pi_row(99, 3, 0.7, row);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(row[static_cast<std::size_t>(i)], m.row(3)[static_cast<std::size_t>(i)]);
}

TEST(GlobalStateTest, BetaDerivedFromTheta) {
  GlobalState g(3);
  g.set_theta(0, 0, 3.0);
  g.set_theta(0, 1, 1.0);
  g.set_theta(1, 0, 1.0);
  g.set_theta(1, 1, 4.0);
  g.update_beta_from_theta();
  EXPECT_NEAR(g.beta(0), 0.25, 1e-6);
  EXPECT_NEAR(g.beta(1), 0.8, 1e-6);
}

TEST(GlobalStateTest, BetaClampedIntoOpenInterval) {
  GlobalState g(1);
  g.set_theta(0, 0, 0.0);
  g.set_theta(0, 1, 5.0);
  g.update_beta_from_theta();
  EXPECT_LT(g.beta(0), 1.0f);
  EXPECT_GT(g.beta(0), 0.0f);
}

TEST(GlobalStateTest, InitRandomPositiveAndDeterministic) {
  Hyper hyper;
  hyper.num_communities = 6;
  GlobalState a(6);
  a.init_random(5, hyper);
  GlobalState b(6);
  b.init_random(5, hyper);
  for (std::uint32_t k = 0; k < 6; ++k) {
    EXPECT_GT(a.theta(k, 0), 0.0);
    EXPECT_GT(a.theta(k, 1), 0.0);
    EXPECT_EQ(a.theta(k, 0), b.theta(k, 0));
    EXPECT_EQ(a.beta(k), b.beta(k));
  }
}

TEST(StateTest, RowWidthIsKPlusOne) {
  EXPECT_EQ(pi_row_width(16), 17u);
}

}  // namespace
}  // namespace scd::core
