#include "core/report.h"

#include <gtest/gtest.h>

namespace scd::core {
namespace {

PiMatrix make_pi() {
  // 4 vertices, 3 communities with hand-set memberships.
  PiMatrix pi(4, 3);
  auto set = [&](std::uint32_t v, float a, float b, float c) {
    auto row = pi.row(v);
    row[0] = a;
    row[1] = b;
    row[2] = c;
    row[3] = 1.0f;  // phi_sum, unused here
  };
  set(0, 0.9f, 0.05f, 0.05f);
  set(1, 0.5f, 0.5f, 0.0f);  // overlapping 0 and 1
  set(2, 0.1f, 0.8f, 0.1f);
  set(3, 0.2f, 0.2f, 0.6f);
  return pi;
}

TEST(ReportTest, ThresholdExtraction) {
  const CommunityReport report =
      extract_communities(make_pi(), /*threshold=*/0.4);
  ASSERT_EQ(report.communities.size(), 3u);
  EXPECT_EQ(report.communities[0], (std::vector<graph::Vertex>{0, 1}));
  EXPECT_EQ(report.communities[1], (std::vector<graph::Vertex>{1, 2}));
  EXPECT_EQ(report.communities[2], (std::vector<graph::Vertex>{3}));
  EXPECT_EQ(report.overlapping_vertices, 1u);
}

TEST(ReportTest, DominantAssignment) {
  const CommunityReport report = extract_communities(make_pi(), 0.4);
  EXPECT_EQ(report.dominant[0], 0u);
  EXPECT_EQ(report.dominant[2], 1u);
  EXPECT_EQ(report.dominant[3], 2u);
}

TEST(ReportTest, HighThresholdEmptiesCommunities) {
  const CommunityReport report = extract_communities(make_pi(), 0.95);
  for (const auto& members : report.communities) {
    EXPECT_TRUE(members.empty());
  }
  EXPECT_EQ(report.overlapping_vertices, 0u);
}

TEST(ReportTest, DefaultThresholdHeuristic) {
  EXPECT_DOUBLE_EQ(default_membership_threshold(3), 0.5);    // cap
  EXPECT_DOUBLE_EQ(default_membership_threshold(10), 0.15);
  EXPECT_DOUBLE_EQ(default_membership_threshold(100), 0.1);  // floor
}

}  // namespace
}  // namespace scd::core
