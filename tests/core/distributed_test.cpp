#include "core/distributed_sampler.h"

#include <gtest/gtest.h>

#include "core/sequential_sampler.h"
#include "sim/cluster.h"
#include "tests/core/test_fixtures.h"

namespace scd::core {
namespace {

using testing::small_planted_fixture;

sim::SimCluster::Config cluster_config(unsigned workers) {
  sim::SimCluster::Config config;
  config.num_ranks = workers + 1;
  return config;
}

struct EquivParam {
  unsigned workers;
  bool pipeline;
};

class DistributedEquivalenceTest
    : public ::testing::TestWithParam<EquivParam> {};

// The headline integration property: the distributed sampler on any
// worker count, pipelined or not, reproduces the sequential trajectory
// (virtual time differs; numbers must not).
TEST_P(DistributedEquivalenceTest, MatchesSequentialTrajectory) {
  const auto [workers, pipeline] = GetParam();
  auto f = small_planted_fixture(1618, 150, 4, 80);
  f.options.eval_interval = 20;

  SequentialSampler seq(f.split->training(), f.split.get(), f.hyper,
                        f.options);
  seq.run(60);

  sim::SimCluster cluster(cluster_config(workers));
  DistributedOptions options;
  options.base = f.options;
  options.pipeline = pipeline;
  options.chunk_vertices = 8;
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  const DistributedResult result = dist.run(60);

  ASSERT_EQ(result.history.size(), seq.history().size());
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_EQ(result.history[i].iteration, seq.history()[i].iteration);
    EXPECT_NEAR(result.history[i].perplexity,
                seq.history()[i].perplexity,
                1e-6 * seq.history()[i].perplexity)
        << "eval point " << i;
  }
  for (std::uint32_t k = 0; k < f.hyper.num_communities; ++k) {
    EXPECT_NEAR(dist.global().beta(k), seq.global().beta(k), 1e-6);
  }
  const PiMatrix snapshot = dist.snapshot_pi();
  const PiMatrix& ps = seq.pi();
  for (std::uint32_t v = 0; v < ps.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < ps.num_communities(); ++k) {
      ASSERT_NEAR(snapshot.pi(v, k), ps.pi(v, k), 1e-5) << "v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, DistributedEquivalenceTest,
    ::testing::Values(EquivParam{1, true}, EquivParam{2, true},
                      EquivParam{4, true}, EquivParam{4, false},
                      EquivParam{7, true}));

TEST(DistributedSamplerTest, PipeliningReducesVirtualTimeNotNumbers) {
  auto f = small_planted_fixture(2020, 150, 4, 80);
  f.options.eval_interval = 30;

  auto run_mode = [&](bool pipeline) {
    sim::SimCluster cluster(cluster_config(4));
    DistributedOptions options;
    options.base = f.options;
    options.pipeline = pipeline;
    options.chunk_vertices = 4;
    DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                            f.hyper, options);
    return dist.run(60);
  };
  const DistributedResult with = run_mode(true);
  const DistributedResult without = run_mode(false);

  ASSERT_EQ(with.history.size(), without.history.size());
  for (std::size_t i = 0; i < with.history.size(); ++i) {
    EXPECT_NEAR(with.history[i].perplexity, without.history[i].perplexity,
                1e-9 * without.history[i].perplexity);
  }
  EXPECT_LT(with.virtual_seconds, without.virtual_seconds);
}

TEST(DistributedSamplerTest, PhaseStatsCoverTheIteration) {
  auto f = small_planted_fixture(7, 120, 4, 60);
  f.options.eval_interval = 0;
  sim::SimCluster cluster(cluster_config(3));
  DistributedOptions options;
  options.base = f.options;
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  const DistributedResult result = dist.run(20);
  const sim::PhaseStats& cp = result.critical_path;
  EXPECT_GT(cp.get(sim::Phase::kLoadPi), 0.0);
  EXPECT_GT(cp.get(sim::Phase::kUpdatePhi), 0.0);
  EXPECT_GT(cp.get(sim::Phase::kUpdatePi), 0.0);
  EXPECT_GT(cp.get(sim::Phase::kUpdateBetaTheta), 0.0);
  EXPECT_GT(cp.get(sim::Phase::kDrawMinibatch), 0.0);
  EXPECT_GT(result.virtual_seconds, 0.0);
  EXPECT_GT(result.avg_iteration_seconds, 0.0);
}

TEST(DistributedSamplerTest, CostOnlyModeNeedsNoGraphAndScales) {
  PhantomWorkload workload;
  workload.num_vertices = 65'608'366;  // com-Friendster
  workload.avg_degree = 55.0;
  workload.minibatch_vertices = 16384;
  workload.minibatch_pairs = 8192;
  workload.heldout_pairs = 0;
  Hyper hyper;
  hyper.num_communities = 1024;

  auto run_with_workers = [&](unsigned workers) {
    sim::SimCluster cluster(cluster_config(workers));
    DistributedOptions options;
    options.base.eval_interval = 0;
    DistributedSampler dist(cluster, workload, hyper, options);
    return dist.run(8);
  };
  const DistributedResult small = run_with_workers(8);
  const DistributedResult large = run_with_workers(64);
  // Strong scaling: more workers -> less virtual time per iteration.
  EXPECT_LT(large.avg_iteration_seconds, small.avg_iteration_seconds);
  EXPECT_GT(small.avg_iteration_seconds, 0.0);
}

TEST(DistributedSamplerTest, CostOnlyTimesTrackRealTimes) {
  // Same workload executed real vs phantom: virtual time per iteration
  // should agree within a modest tolerance (the phantom uses expected
  // locality and average degrees).
  auto f = small_planted_fixture(909, 600, 4, 60);
  f.options.eval_interval = 0;
  f.options.minibatch.strategy = graph::MinibatchStrategy::kRandomPair;
  f.options.minibatch.num_pairs = 48;
  f.options.num_neighbors = 16;

  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kIters = 24;

  sim::SimCluster real_cluster(cluster_config(kWorkers));
  DistributedOptions options;
  options.base = f.options;
  DistributedSampler real_sampler(real_cluster, f.split->training(),
                                  f.split.get(), f.hyper, options);
  const DistributedResult real_result = real_sampler.run(kIters);

  PhantomWorkload workload;
  workload.num_vertices = f.split->training().num_vertices();
  workload.avg_degree =
      2.0 * double(f.split->training().num_edges()) /
      double(f.split->training().num_vertices());
  // 48 random pairs touch ~96 distinct vertices on a 600-vertex graph.
  workload.minibatch_vertices = 92;
  workload.minibatch_pairs = 48;
  workload.heldout_pairs = 0;
  sim::SimCluster phantom_cluster(cluster_config(kWorkers));
  DistributedSampler phantom(phantom_cluster, workload, f.hyper, options);
  const DistributedResult phantom_result = phantom.run(kIters);

  EXPECT_NEAR(phantom_result.avg_iteration_seconds,
              real_result.avg_iteration_seconds,
              0.25 * real_result.avg_iteration_seconds);
}


TEST(DistributedSamplerTest, LinkAwareModeAlsoMatchesSequential) {
  auto f = small_planted_fixture(2468, 150, 4, 80);
  f.options.eval_interval = 20;
  f.options.neighbor_mode = NeighborMode::kLinkAware;

  SequentialSampler seq(f.split->training(), f.split.get(), f.hyper,
                        f.options);
  seq.run(40);

  sim::SimCluster cluster(cluster_config(3));
  DistributedOptions options;
  options.base = f.options;
  options.chunk_vertices = 8;
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  const DistributedResult result = dist.run(40);

  ASSERT_EQ(result.history.size(), seq.history().size());
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_NEAR(result.history[i].perplexity,
                seq.history()[i].perplexity,
                1e-6 * seq.history()[i].perplexity);
  }
}

TEST(DistributedSamplerTest, DedupReadsChangeTimeNotNumbers) {
  // Acceptance criterion: deduplicating the per-stage key lists only
  // removes redundant transfers — every worker still sees the same pi
  // rows, so the trajectory is bit-identical with dedup on vs off.
  auto f = small_planted_fixture(4242, 150, 4, 80);
  f.options.eval_interval = 15;
  f.options.neighbor_mode = NeighborMode::kLinkAware;

  auto run_mode = [&](bool dedup) {
    sim::SimCluster cluster(cluster_config(4));
    DistributedOptions options;
    options.base = f.options;
    options.chunk_vertices = 8;
    options.dedup_reads = dedup;
    DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                            f.hyper, options);
    return dist.run(45);
  };
  const DistributedResult with = run_mode(true);
  const DistributedResult without = run_mode(false);

  ASSERT_EQ(with.history.size(), without.history.size());
  ASSERT_GT(with.history.size(), 0u);
  for (std::size_t i = 0; i < with.history.size(); ++i) {
    EXPECT_EQ(with.history[i].iteration, without.history[i].iteration);
    EXPECT_EQ(with.history[i].perplexity, without.history[i].perplexity)
        << "eval point " << i;
  }
  // Fewer rows on the wire can only help the modeled time.
  EXPECT_LE(with.virtual_seconds, without.virtual_seconds);
}

TEST(DistributedSamplerTest, RunIsOneShot) {
  auto f = small_planted_fixture(3, 80, 3, 40);
  sim::SimCluster cluster(cluster_config(2));
  DistributedOptions options;
  options.base = f.options;
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  dist.run(2);
  EXPECT_THROW(dist.run(2), scd::UsageError);
}

TEST(DistributedSamplerTest, NeedsAtLeastOneWorker) {
  auto f = small_planted_fixture(3, 80, 3, 40);
  sim::SimCluster cluster(cluster_config(0));  // 1 rank: master only
  DistributedOptions options;
  options.base = f.options;
  EXPECT_THROW(DistributedSampler(cluster, f.split->training(),
                                  f.split.get(), f.hyper, options),
               scd::UsageError);
}

}  // namespace
}  // namespace scd::core
