#include "core/phi_kernel.h"

#include <gtest/gtest.h>

#include "random/distributions.h"

namespace scd::core {
namespace {

constexpr std::uint32_t kK = 3;

std::vector<float> make_row(rng::Xoshiro256& rng) {
  std::vector<double> pi(kK);
  rng::sample_dirichlet(rng, 0.8, pi);
  std::vector<float> row(kK + 1);
  for (std::uint32_t i = 0; i < kK; ++i) {
    row[i] = static_cast<float>(pi[i]);
  }
  row[kK] = 2.0f;
  return row;
}

// staged_phi_update with a NeighborSet must equal the manual sequence:
// accumulate exact + scaled sampled gradients, then the row update with
// scale 1 — for both weighting layouts. The manual side goes through the
// same fast_* dispatch the kernel uses, so the equality is exact under
// either kernel path (scalar/fused numerics are covered separately by
// kernels_simd_test).
TEST(PhiKernelTest, MatchesManualAccumulation) {
  rng::Xoshiro256 rng(3);
  const std::vector<float> row_a = make_row(rng);
  std::vector<std::vector<float>> neighbor_rows;
  for (int i = 0; i < 5; ++i) neighbor_rows.push_back(make_row(rng));

  LikelihoodTerms terms;
  const std::vector<float> beta = {0.3f, 0.5f, 0.7f};
  terms.refresh(beta, 0.01);

  graph::NeighborSet set;
  for (int i = 0; i < 5; ++i) {
    set.samples.push_back({static_cast<graph::Vertex>(i), i < 2});
  }
  set.exact_prefix = 2;   // two exact links
  set.sampled_scale = 40.0;

  // Via the kernel.
  std::vector<float> via_kernel(kK + 1);
  PhiScratch scratch(kK);
  staged_phi_update(
      /*seed=*/9, /*iteration=*/4, /*vertex=*/7, row_a, set,
      [&](std::size_t i) {
        return std::span<const float>(neighbor_rows[i]);
      },
      terms, /*eps=*/0.02, /*alpha=*/0.1, via_kernel, scratch);

  // Manual, via the same dispatched kernels.
  std::vector<double> exact(kK, 0.0);
  std::vector<double> sampled(kK, 0.0);
  std::vector<float> w(kK);
  std::vector<double> noise(kK);
  for (std::size_t i = 0; i < set.samples.size(); ++i) {
    fast_accumulate_phi_grad(row_a, neighbor_rows[i], terms,
                             set.samples[i].link,
                             i < set.exact_prefix
                                 ? std::span<double>(exact)
                                 : std::span<double>(sampled),
                             w);
  }
  for (std::uint32_t k = 0; k < kK; ++k) {
    exact[k] += set.sampled_scale * sampled[k];
  }
  std::vector<float> manual(row_a);
  fast_update_phi_row(9, 4, 7, manual, exact, 1.0, 0.02, 0.1,
                      /*noise_factor=*/1.0, GradientForm::kRawEqn3, noise);

  for (std::uint32_t i = 0; i <= kK; ++i) {
    EXPECT_EQ(via_kernel[i], manual[i]) << "slot " << i;
  }
}

TEST(PhiKernelTest, EmptyNeighborSetStillAppliesPriorAndNoise) {
  rng::Xoshiro256 rng(5);
  const std::vector<float> row_a = make_row(rng);
  LikelihoodTerms terms;
  const std::vector<float> beta = {0.3f, 0.5f, 0.7f};
  terms.refresh(beta, 0.01);

  graph::NeighborSet set;  // no samples at all
  std::vector<float> out(kK + 1);
  PhiScratch scratch(kK);
  staged_phi_update(
      1, 0, 0, row_a, set,
      [&](std::size_t) { return std::span<const float>(row_a); }, terms,
      0.05, 0.1, out, scratch);
  double sum = 0.0;
  for (std::uint32_t k = 0; k < kK; ++k) {
    EXPECT_GT(out[k], 0.0f);
    sum += out[k];
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(PhiKernelTest, ScratchIsReusableAcrossVertices) {
  rng::Xoshiro256 rng(7);
  const std::vector<float> row_a = make_row(rng);
  const std::vector<float> row_b = make_row(rng);
  LikelihoodTerms terms;
  const std::vector<float> beta = {0.2f, 0.4f, 0.6f};
  terms.refresh(beta, 0.02);
  graph::NeighborSet set;
  set.samples.push_back({1, true});
  set.exact_prefix = 0;
  set.sampled_scale = 10.0;

  PhiScratch scratch(kK);
  std::vector<float> out1(kK + 1);
  staged_phi_update(
      1, 0, 0, row_a, set,
      [&](std::size_t) { return std::span<const float>(row_b); }, terms,
      0.02, 0.1, out1, scratch);
  // Second use must not see stale gradient state from the first.
  std::vector<float> out2(kK + 1);
  staged_phi_update(
      1, 0, 0, row_a, set,
      [&](std::size_t) { return std::span<const float>(row_b); }, terms,
      0.02, 0.1, out2, scratch);
  for (std::uint32_t i = 0; i <= kK; ++i) {
    EXPECT_EQ(out1[i], out2[i]);
  }
}

}  // namespace
}  // namespace scd::core
