// Statistical validation of the SG-MCMC chain against a closed-form
// posterior.
//
// With K = 1 the model collapses: pi_a = 1 for every vertex, z_ab = z_ba
// always, and the likelihood of the whole graph is
// beta^|links| (1-beta)^|non-links|. Under the Beta(eta0, eta1) prior the
// exact posterior is Beta(eta0 + links, eta1 + nonlinks). The SGRLD chain
// with minibatch gradients should therefore spend its time near the
// posterior mean — a rare end-to-end check that the stochastic updates
// target the right distribution, not merely a downhill direction.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sequential_sampler.h"
#include "graph/generator.h"

namespace scd::core {
namespace {

TEST(PosteriorTest, K1BetaChainTracksExactPosteriorMean) {
  // An Erdos-Renyi graph: with K = 1 the "community strength" beta is
  // just the edge density.
  rng::Xoshiro256 gen_rng(5);
  graph::PlantedConfig config;
  config.num_vertices = 120;
  config.num_communities = 1;
  config.p_two_memberships = 0.0;
  config.p_three_memberships = 0.0;
  config.beta_lo = 0.18;
  config.beta_hi = 0.22;
  config.delta = 1e-9;  // all structure in the single community
  const graph::GeneratedGraph g = graph::generate_planted(gen_rng, config);

  Hyper hyper;
  hyper.num_communities = 1;
  hyper.eta0 = 1.0;
  hyper.eta1 = 1.0;
  hyper.delta = 1e-6;
  SamplerOptions options;
  options.minibatch.strategy =
      graph::MinibatchStrategy::kStratifiedRandomNode;
  options.minibatch.nonlink_partitions = 4;
  options.num_neighbors = 16;
  options.eval_interval = 0;
  options.step.a = 0.01;
  options.step.b = 2048.0;
  options.seed = 77;
  // Only the preconditioned (Patterson-Teh) drift targets the exact
  // posterior; the paper's literal Eqn 3 biases beta toward 1/2 — see
  // core::GradientForm and the companion test below.
  options.gradient_form = GradientForm::kPreconditioned;

  SequentialSampler sampler(g.graph, nullptr, hyper, options);
  sampler.run(2000);  // burn-in

  // Time-average beta over a long window.
  double avg_beta = 0.0;
  constexpr int kWindows = 400;
  for (int w = 0; w < kWindows; ++w) {
    sampler.run(10);
    avg_beta += sampler.global().beta(0);
  }
  avg_beta /= kWindows;

  const double links = static_cast<double>(g.graph.num_edges());
  const double nonlinks =
      static_cast<double>(g.graph.num_pairs()) - links;
  const double posterior_mean =
      (hyper.eta0 + links) / (hyper.eta0 + hyper.eta1 + links + nonlinks);

  // The chain keeps a finite step size (bias) and the minibatch gradient
  // is itself noisy, so expect agreement within ~20% relative.
  EXPECT_NEAR(avg_beta, posterior_mean, 0.2 * posterior_mean)
      << "links=" << links << " posterior mean=" << posterior_mean;
  // And the density is ~0.2, so this is a non-trivial target.
  EXPECT_GT(posterior_mean, 0.1);
  EXPECT_LT(posterior_mean, 0.3);
}

TEST(PosteriorTest, RawEqn3FormIsBiasedUpward) {
  // Companion documentation-test: the literal Eqn 3 drift equilibrates
  // theta at O(sqrt(counts)), which pulls beta toward 1/2 — here the
  // density is ~0.2, so the chain settles well above the posterior mean.
  rng::Xoshiro256 gen_rng(5);
  graph::PlantedConfig config;
  config.num_vertices = 120;
  config.num_communities = 1;
  config.p_two_memberships = 0.0;
  config.p_three_memberships = 0.0;
  config.beta_lo = 0.18;
  config.beta_hi = 0.22;
  config.delta = 1e-9;
  const graph::GeneratedGraph g = graph::generate_planted(gen_rng, config);

  Hyper hyper;
  hyper.num_communities = 1;
  hyper.delta = 1e-6;
  SamplerOptions options;
  options.minibatch.nonlink_partitions = 4;
  options.num_neighbors = 16;
  options.eval_interval = 0;
  options.step.a = 0.01;
  options.step.b = 2048.0;
  options.seed = 77;
  options.gradient_form = GradientForm::kRawEqn3;

  SequentialSampler sampler(g.graph, nullptr, hyper, options);
  sampler.run(2000);
  double avg_beta = 0.0;
  constexpr int kWindows = 200;
  for (int w = 0; w < kWindows; ++w) {
    sampler.run(10);
    avg_beta += sampler.global().beta(0);
  }
  avg_beta /= kWindows;
  const double density = g.graph.density();
  EXPECT_GT(avg_beta, 1.5 * density) << "expected the documented bias";
}

}  // namespace
}  // namespace scd::core
