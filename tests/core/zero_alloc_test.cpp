// Steady-state allocation and determinism regression tests.
//
// This binary overrides the global allocation operators with counting
// wrappers (which is why it is a separate test executable): after a
// warm-up run, ParallelSampler::one_iteration and SequentialSampler::
// one_iteration must perform ZERO heap allocations — every buffer they
// touch lives in the IterationWorkspace sized at construction (see
// core/iteration_workspace.h), and ThreadPool dispatch is a raw function
// pointer, not a std::function.
//
// It also pins down the thread-count invariance of ParallelSampler: the
// theta reduction runs over kThetaBlocks fixed blocks folded in block
// order, so trajectories are bit-identical for any number of threads.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#ifdef SCD_ZERO_ALLOC_BACKTRACE
#include <execinfo.h>

#include <cstdio>
#endif

#include <gtest/gtest.h>

#include "core/distributed_sampler.h"
#include "core/parallel_sampler.h"
#include "core/sequential_sampler.h"
#include "sim/cluster.h"
#include "tests/core/test_fixtures.h"
#include "trace/recorder.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_tracking{false};

void* counted_alloc(std::size_t size) {
  if (g_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
#ifdef SCD_ZERO_ALLOC_BACKTRACE
    g_tracking.store(false, std::memory_order_relaxed);
    void* frames[32];
    const int n = backtrace(frames, 32);
    backtrace_symbols_fd(frames, n, 2);
    std::fprintf(stderr, "---- alloc of %zu bytes ----\n", size);
    g_tracking.store(true, std::memory_order_relaxed);
#endif
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

class AllocationGuard {
 public:
  AllocationGuard() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_tracking.store(true, std::memory_order_relaxed);
  }
  ~AllocationGuard() { g_tracking.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const {
    return g_alloc_count.load(std::memory_order_relaxed);
  }
};

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace scd::core {
namespace {

TEST(ZeroAllocTest, ParallelIterationIsAllocationFreeAfterWarmup) {
  testing::Fixture f = testing::small_planted_fixture();
  f.options.eval_interval = 0;  // isolate one_iteration
  ParallelSampler sampler(f.generated.graph, /*heldout=*/nullptr, f.hyper,
                          f.options, /*num_threads=*/4);
  sampler.run(20);  // warm-up

  AllocationGuard guard;
  sampler.run(30);
  EXPECT_EQ(guard.count(), 0u)
      << "steady-state one_iteration must not touch the heap";
}

TEST(ZeroAllocTest, SequentialIterationIsAllocationFreeAfterWarmup) {
  testing::Fixture f = testing::small_planted_fixture();
  f.options.eval_interval = 0;
  SequentialSampler sampler(f.generated.graph, /*heldout=*/nullptr, f.hyper,
                            f.options);
  sampler.run(20);

  AllocationGuard guard;
  sampler.run(30);
  EXPECT_EQ(guard.count(), 0u);
}

TEST(ZeroAllocTest, PerplexityEvaluationIsAllocationFreeAfterWarmup) {
  testing::Fixture f = testing::small_planted_fixture();
  f.options.eval_interval = 0;
  ParallelSampler sampler(f.generated.graph, f.split.get(), f.hyper,
                          f.options, /*num_threads=*/4);
  sampler.run(5);
  // Warm the history vector past libstdc++'s 1 -> 2 -> 4 growth steps so
  // the tracked append below lands in existing capacity.
  sampler.evaluate_perplexity();
  sampler.evaluate_perplexity();
  sampler.evaluate_perplexity();

  AllocationGuard guard;
  sampler.evaluate_perplexity();
  EXPECT_EQ(guard.count(), 0u)
      << "per-sample probability writes must reuse the evaluator state";
}

TEST(ZeroAllocTest, DistributedIterationIsAllocationFreeAfterWarmup) {
  // The distributed path (master deploy -> worker stages -> collectives)
  // must also be heap-quiet once warm: DistributedWorkspace owns every
  // per-iteration buffer and the transport recycles payload buffers and
  // collective slots from pools. run() is one-shot, so the tracking
  // window is carved out of a single 60-iteration run via the master
  // hook: iterations [0, 20) warm the pools, [20, 55) are tracked, and
  // the tail is left untracked so worker shutdown is not counted.
  testing::Fixture f = testing::small_planted_fixture();
  f.options.eval_interval = 0;  // isolate the iteration path

  sim::SimCluster::Config config;
  config.num_ranks = 3;  // master + 2 workers
  sim::SimCluster cluster(config);
  DistributedOptions options;
  options.base = f.options;
  options.pipeline = true;
  options.dedup_reads = true;
  options.chunk_vertices = 8;
  std::uint64_t hook_calls = 0;
  options.master_iteration_hook = [&hook_calls](std::uint64_t t) {
    ++hook_calls;
    if (t == 20) {
      g_alloc_count.store(0, std::memory_order_relaxed);
      g_tracking.store(true, std::memory_order_relaxed);
    } else if (t == 55) {
      g_tracking.store(false, std::memory_order_relaxed);
    }
  };
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  dist.run(60);
  g_tracking.store(false, std::memory_order_relaxed);
  EXPECT_EQ(hook_calls, 60u);  // the tracking window really ran
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state distributed iterations must not touch the heap";
}

TEST(ZeroAllocTest, TracedDistributedIterationIsAllocationFreeAfterWarmup) {
  // Same carve-out as above, but with a TraceRecorder installed: after
  // run() pre-sizes the lanes via reserve(), steady-state span/metric
  // recording must not touch the heap either.
  testing::Fixture f = testing::small_planted_fixture();
  f.options.eval_interval = 0;

  sim::SimCluster::Config config;
  config.num_ranks = 3;
  sim::SimCluster cluster(config);
  trace::TraceRecorder recorder(config.num_ranks);
  DistributedOptions options;
  options.base = f.options;
  options.pipeline = true;
  options.dedup_reads = true;
  options.chunk_vertices = 8;
  options.trace = &recorder;
  std::uint64_t hook_calls = 0;
  options.master_iteration_hook = [&hook_calls](std::uint64_t t) {
    ++hook_calls;
    if (t == 20) {
      g_alloc_count.store(0, std::memory_order_relaxed);
      g_tracking.store(true, std::memory_order_relaxed);
    } else if (t == 55) {
      g_tracking.store(false, std::memory_order_relaxed);
    }
  };
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  dist.run(60);
  g_tracking.store(false, std::memory_order_relaxed);
  EXPECT_EQ(hook_calls, 60u);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state tracing must record into reserved lanes";
  EXPECT_GT(recorder.total_spans(), 0u);
}

TEST(ZeroAllocTest, ParallelTrajectoryBitIdenticalAcrossThreadCounts) {
  testing::Fixture f = testing::small_planted_fixture();
  f.options.eval_interval = 0;

  std::vector<std::unique_ptr<ParallelSampler>> samplers;
  for (unsigned threads : {1u, 2u, 5u}) {
    samplers.push_back(std::make_unique<ParallelSampler>(
        f.generated.graph, f.split.get(), f.hyper, f.options, threads));
    samplers.back()->run(40);
  }

  const ParallelSampler& ref = *samplers[0];
  for (std::size_t s = 1; s < samplers.size(); ++s) {
    const ParallelSampler& other = *samplers[s];
    for (std::uint32_t v = 0; v < ref.pi().num_vertices(); ++v) {
      const auto a = ref.pi().row(v);
      const auto b = other.pi().row(v);
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "pi row " << v << " slot " << i
                              << " differs for sampler " << s;
      }
    }
    const auto ta = ref.global().theta_flat();
    const auto tb = other.global().theta_flat();
    for (std::size_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta[i], tb[i]) << "theta slot " << i;
    }
  }
}

}  // namespace
}  // namespace scd::core
