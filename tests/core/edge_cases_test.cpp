// Robustness edge cases: degenerate graphs and extreme configurations
// must run without crashing or corrupting state.
#include <gtest/gtest.h>

#include "core/parallel_sampler.h"
#include "core/sequential_sampler.h"
#include "graph/builder.h"
#include "graph/heldout.h"

namespace scd::core {
namespace {

SamplerOptions tiny_options() {
  SamplerOptions options;
  options.minibatch.nonlink_partitions = 2;
  options.num_neighbors = 2;
  options.eval_interval = 0;
  options.seed = 3;
  return options;
}

TEST(EdgeCasesTest, IsolatedVerticesSurviveTraining) {
  // Vertices 6..9 have no edges: the stratified link stratum for them is
  // an empty minibatch, and they can still appear in neighbor sets.
  graph::GraphBuilder builder(10);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  builder.add_edge(3, 4);
  builder.add_edge(4, 5);
  builder.add_edge(5, 0);
  const graph::Graph g = std::move(builder).build();

  Hyper hyper;
  hyper.num_communities = 2;
  hyper.delta = 0.01;
  SequentialSampler sampler(g, nullptr, hyper, tiny_options());
  EXPECT_NO_THROW(sampler.run(200));
  for (std::uint32_t v = 0; v < 10; ++v) {
    double sum = 0.0;
    for (std::uint32_t k = 0; k < 2; ++k) sum += sampler.pi().pi(v, k);
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(EdgeCasesTest, SingleCommunityRuns) {
  graph::GraphBuilder builder(6);
  for (graph::Vertex v = 0; v < 5; ++v) builder.add_edge(v, v + 1);
  const graph::Graph g = std::move(builder).build();
  Hyper hyper;
  hyper.num_communities = 1;
  hyper.delta = 0.01;
  SequentialSampler sampler(g, nullptr, hyper, tiny_options());
  EXPECT_NO_THROW(sampler.run(100));
  for (std::uint32_t v = 0; v < 6; ++v) {
    EXPECT_NEAR(sampler.pi().pi(v, 0), 1.0, 1e-5);
  }
}

TEST(EdgeCasesTest, TinyTriangleGraph) {
  graph::GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  const graph::Graph g = std::move(builder).build();
  Hyper hyper;
  hyper.num_communities = 2;
  hyper.delta = 0.05;
  SamplerOptions options = tiny_options();
  options.num_neighbors = 1;  // only 2 candidates exist
  SequentialSampler sampler(g, nullptr, hyper, options);
  EXPECT_NO_THROW(sampler.run(50));
}

TEST(EdgeCasesTest, EvalEveryIterationWorks) {
  graph::GraphBuilder builder(30);
  rng::Xoshiro256 rng(1);
  for (int i = 0; i < 80; ++i) {
    const auto a = static_cast<graph::Vertex>(rng.next_below(30));
    auto b = static_cast<graph::Vertex>(rng.next_below(29));
    if (b >= a) ++b;
    builder.add_edge(a, b);
  }
  const graph::Graph full = std::move(builder).build();
  rng::Xoshiro256 split_rng(2);
  const graph::HeldOutSplit split(split_rng, full, 10);
  Hyper hyper;
  hyper.num_communities = 3;
  hyper.delta = 0.01;
  SamplerOptions options = tiny_options();
  options.eval_interval = 1;
  SequentialSampler sampler(split.training(), &split, hyper, options);
  sampler.run(20);
  EXPECT_EQ(sampler.history().size(), 20u);
  for (const HistoryPoint& p : sampler.history()) {
    EXPECT_TRUE(std::isfinite(p.perplexity));
    EXPECT_GT(p.perplexity, 0.0);
  }
}

TEST(EdgeCasesTest, MoreThreadsThanMinibatchVertices) {
  graph::GraphBuilder builder(12);
  for (graph::Vertex v = 0; v < 11; ++v) builder.add_edge(v, v + 1);
  const graph::Graph g = std::move(builder).build();
  Hyper hyper;
  hyper.num_communities = 2;
  hyper.delta = 0.01;
  ParallelSampler sampler(g, nullptr, hyper, tiny_options(), 8);
  EXPECT_NO_THROW(sampler.run(100));
}

TEST(EdgeCasesTest, LargeKOnSmallGraph) {
  graph::GraphBuilder builder(20);
  for (graph::Vertex v = 0; v < 19; ++v) builder.add_edge(v, v + 1);
  const graph::Graph g = std::move(builder).build();
  Hyper hyper;
  hyper.num_communities = 64;  // far more communities than structure
  hyper.delta = 0.01;
  SequentialSampler sampler(g, nullptr, hyper, tiny_options());
  EXPECT_NO_THROW(sampler.run(50));
  for (std::uint32_t v = 0; v < 20; ++v) {
    EXPECT_GT(sampler.pi().phi_sum(v), 0.0f);
  }
}

}  // namespace
}  // namespace scd::core
