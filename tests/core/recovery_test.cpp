// End-to-end recovery: on an easy planted graph, the inferred memberships
// must recover the ground-truth communities well above chance.
#include <gtest/gtest.h>

#include "core/report.h"
#include "core/sequential_sampler.h"
#include "graph/metrics.h"
#include "tests/core/test_fixtures.h"

namespace scd::core {
namespace {

TEST(RecoveryTest, PlantedCommunitiesRecovered) {
  auto f = testing::small_planted_fixture(5150, 200, 4, 100);
  f.options.step.a = 0.05;
  SequentialSampler sampler(f.split->training(), f.split.get(), f.hyper,
                            f.options);
  sampler.run(1500);

  const CommunityReport report = extract_communities(
      sampler.pi(), default_membership_threshold(f.hyper.num_communities));

  // Dominant-label NMI against the planted first membership.
  std::vector<std::uint32_t> truth_labels(f.generated.graph.num_vertices());
  for (graph::Vertex v = 0; v < f.generated.graph.num_vertices(); ++v) {
    truth_labels[v] = f.generated.truth.memberships[v].front();
  }
  const double label_nmi = graph::nmi(truth_labels, report.dominant);
  EXPECT_GT(label_nmi, 0.55) << "dominant-label NMI too low";

  // Overlapping cover F1.
  const double f1 =
      graph::best_match_f1(f.generated.truth.communities,
                           report.communities);
  EXPECT_GT(f1, 0.6) << "best-match F1 too low";

  // Some overlap should be detected (20% of vertices are planted with
  // two memberships).
  EXPECT_GT(report.overlapping_vertices, 0u);
}

TEST(RecoveryTest, BetaEstimatesLandInPlantedRange) {
  auto f = testing::small_planted_fixture(6006, 200, 4, 100);
  f.options.step.a = 0.05;
  SequentialSampler sampler(f.split->training(), f.split.get(), f.hyper,
                            f.options);
  sampler.run(1500);
  // Planted strengths are in [0.25, 0.4]; estimates should end up well
  // above the background delta for most communities.
  int strong = 0;
  for (std::uint32_t k = 0; k < f.hyper.num_communities; ++k) {
    if (sampler.global().beta(k) > 0.05f) ++strong;
  }
  EXPECT_GE(strong, 3);
}


// Sparse-graph regression test for the link-aware neighbor mode: with
// Eqn 5's uniform V_n the phi gradient carries essentially no link
// signal at density ~1.5% and the sampler cannot learn; link-aware mode
// must show a clear perplexity drop. (Config validated empirically:
// N=800, K=32, deg=12 reaches ~4.5 from 8.4 in 20k iterations.)
TEST(RecoveryTest, SparseGraphLearnsWithLinkAwareMode) {
  rng::Xoshiro256 gen_rng(2016);
  const graph::PlantedConfig config =
      graph::planted_config_for_degree(800, 32, 12.0);
  const graph::GeneratedGraph g = graph::generate_planted(gen_rng, config);
  rng::Xoshiro256 split_rng(7);
  const graph::HeldOutSplit split(split_rng, g.graph,
                                  g.graph.num_edges() / 10);

  Hyper hyper;
  hyper.num_communities = 32;
  hyper.delta = suggested_delta(g.graph.density());
  SamplerOptions options;
  options.minibatch.nonlink_partitions = 8;
  options.neighbor_mode = NeighborMode::kLinkAware;
  options.num_neighbors = 16;
  options.eval_interval = 0;
  options.step.a = 0.02;
  options.step.b = 4096.0;
  options.seed = 2016;

  SequentialSampler sampler(split.training(), &split, hyper, options);
  const double initial = sampler.evaluate_perplexity();
  sampler.run(20000);
  const double final_perp = sampler.evaluate_perplexity();
  EXPECT_LT(final_perp, 0.75 * initial)
      << "initial=" << initial << " final=" << final_perp;
}

}  // namespace
}  // namespace scd::core
