#include "core/general_mmsb.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/general_sampler.h"
#include "core/grads.h"
#include "core/sequential_sampler.h"
#include "graph/builder.h"
#include "graph/metrics.h"
#include "random/distributions.h"
#include "tests/core/test_fixtures.h"

namespace scd::core {
namespace {

constexpr std::uint32_t kK = 4;

std::vector<float> random_row(rng::Xoshiro256& rng) {
  std::vector<double> pi(kK);
  rng::sample_dirichlet(rng, 0.6, pi);
  std::vector<float> row(kK + 1);
  for (std::uint32_t i = 0; i < kK; ++i) {
    row[i] = static_cast<float>(pi[i]);
  }
  row[kK] = static_cast<float>(1.0 + rng.next_double());
  return row;
}

TEST(BlockMatrixTest, IndexingCoversUpperTriangleOnce) {
  BlockMatrix blocks(5);
  EXPECT_EQ(blocks.num_blocks(), 15u);
  std::set<std::uint32_t> seen;
  for (std::uint32_t k = 0; k < 5; ++k) {
    for (std::uint32_t l = k; l < 5; ++l) {
      const std::uint32_t idx = blocks.block_index(k, l);
      EXPECT_LT(idx, 15u);
      EXPECT_TRUE(seen.insert(idx).second) << k << "," << l;
      EXPECT_EQ(idx, blocks.block_index(l, k)) << "symmetry";
    }
  }
}

TEST(BlockMatrixTest, BDerivedFromThetaAndClamped) {
  BlockMatrix blocks(2);
  blocks.set_theta(blocks.block_index(0, 1), 0, 1.0);
  blocks.set_theta(blocks.block_index(0, 1), 1, 3.0);
  blocks.refresh_b();
  EXPECT_NEAR(blocks.b(0, 1), 0.75, 1e-6);
  EXPECT_EQ(blocks.b(0, 1), blocks.b(1, 0));
}

// With B_kk = beta_k and B_{k != l} = delta, the general model IS the
// a-MMSB: likelihood and phi gradients must coincide.
TEST(GeneralMmsbTest, ReducesToAssortativeSpecialCase) {
  rng::Xoshiro256 rng(7);
  const double delta = 0.013;
  std::vector<float> beta(kK);
  for (float& b : beta) {
    b = static_cast<float>(0.1 + 0.8 * rng.next_double());
  }
  BlockMatrix blocks(kK);
  for (std::uint32_t k = 0; k < kK; ++k) {
    for (std::uint32_t l = k; l < kK; ++l) {
      const double value = (k == l) ? beta[k] : delta;
      const std::uint32_t idx = blocks.block_index(k, l);
      // theta = (1 - B, B) gives exactly B back.
      blocks.set_theta(idx, 0, 1.0 - value);
      blocks.set_theta(idx, 1, value);
    }
  }
  blocks.refresh_b();
  GeneralLikelihoodTerms general_terms;
  general_terms.refresh(blocks);
  LikelihoodTerms ammsb_terms;
  ammsb_terms.refresh(beta, delta);

  for (int trial = 0; trial < 10; ++trial) {
    const auto row_a = random_row(rng);
    const auto row_b = random_row(rng);
    for (bool y : {false, true}) {
      EXPECT_NEAR(
          general_pair_likelihood(row_a, row_b, general_terms, blocks, y),
          pair_likelihood(row_a, row_b, ammsb_terms, y), 1e-6);
      std::vector<double> g1(kK, 0.0);
      std::vector<double> g2(kK, 0.0);
      general_accumulate_phi_grad(row_a, row_b, general_terms, blocks, y,
                                  g1);
      accumulate_phi_grad(row_a, row_b, ammsb_terms, y, g2);
      for (std::uint32_t k = 0; k < kK; ++k) {
        EXPECT_NEAR(g1[k], g2[k], 1e-4 * std::max(1.0, std::abs(g2[k])));
      }
    }
  }
}

// Finite-difference check of the theta gradient through B = t1/(t0+t1).
TEST(GeneralMmsbTest, ThetaGradMatchesFiniteDifference) {
  rng::Xoshiro256 rng(21);
  BlockMatrix blocks(kK);
  for (std::uint32_t b = 0; b < blocks.num_blocks(); ++b) {
    blocks.set_theta(b, 0, 0.5 + 2.0 * rng.next_double());
    blocks.set_theta(b, 1, 0.5 + 2.0 * rng.next_double());
  }
  blocks.refresh_b();
  const auto row_a = random_row(rng);
  const auto row_b = random_row(rng);

  auto log_z = [&](const BlockMatrix& m, bool y) {
    GeneralLikelihoodTerms t;
    t.refresh(m);
    return std::log(general_pair_likelihood(row_a, row_b, t, m, y));
  };

  for (bool y : {false, true}) {
    GeneralLikelihoodTerms terms;
    terms.refresh(blocks);
    std::vector<double> ratio_link(blocks.num_blocks(), 0.0);
    std::vector<double> ratio_nonlink(blocks.num_blocks(), 0.0);
    general_accumulate_theta_ratio(row_a, row_b, terms, blocks, y,
                                   y ? std::span<double>(ratio_link)
                                     : std::span<double>(ratio_nonlink));
    std::vector<double> grad(blocks.num_blocks() * 2, 0.0);
    general_theta_grad_from_ratios(ratio_link, ratio_nonlink, blocks,
                                   grad);
    for (std::uint32_t b = 0; b < blocks.num_blocks(); ++b) {
      for (unsigned i = 0; i < 2; ++i) {
        const double h = 1e-6 * blocks.theta(b, i);
        BlockMatrix up = blocks;
        up.set_theta(b, i, blocks.theta(b, i) + h);
        up.refresh_b();
        BlockMatrix down = blocks;
        down.set_theta(b, i, blocks.theta(b, i) - h);
        down.refresh_b();
        const double numeric =
            (log_z(up, y) - log_z(down, y)) / (2 * h);
        EXPECT_NEAR(grad[b * 2 + i], numeric,
                    2e-2 * std::max(0.5, std::abs(numeric)))
            << "block " << b << " i " << i << " y " << y;
      }
    }
  }
}

/// Near-bipartite graph: two groups, links almost only across.
graph::Graph make_bipartite(graph::Vertex n, double p_cross,
                            double p_within, std::uint64_t seed) {
  rng::Xoshiro256 rng(seed);
  graph::GraphBuilder builder(n);
  for (graph::Vertex a = 0; a < n; ++a) {
    for (graph::Vertex b = a + 1; b < n; ++b) {
      const bool same_group = (a < n / 2) == (b < n / 2);
      if (rng.next_double() < (same_group ? p_within : p_cross)) {
        builder.add_edge(a, b);
      }
    }
  }
  return std::move(builder).build();
}

// The payoff of the extension: disassortative (bipartite-like) structure
// is invisible to a-MMSB (its only cross-community probability is the
// shared delta) but representable by the general model. Joint (B, pi)
// learning from a diffuse start is a hard saddle (see general_sampler.h),
// so the recovery test isolates the phi machinery: with B fixed at the
// true block strengths, full-pass phi updates must split the graph into
// its two groups.
TEST(GeneralMmsbTest, RecoversDisassortativeGroupsGivenBlockStrengths) {
  const graph::Graph g = make_bipartite(300, 0.15, 0.005, 99);
  constexpr std::uint32_t kTwo = 2;

  BlockMatrix blocks(kTwo);
  auto set_b = [&](std::uint32_t k, std::uint32_t l, double value) {
    const std::uint32_t idx = blocks.block_index(k, l);
    blocks.set_theta(idx, 0, (1.0 - value) * 100.0);
    blocks.set_theta(idx, 1, value * 100.0);
  };
  set_b(0, 0, 0.005);
  set_b(1, 1, 0.005);
  set_b(0, 1, 0.15);
  blocks.refresh_b();
  GeneralLikelihoodTerms terms;
  terms.refresh(blocks);

  PiMatrix pi(300, kTwo);
  pi.init_random(5);
  const double alpha = 0.2;
  const double eps = 0.05;
  std::vector<double> g_exact(kTwo);
  std::vector<double> g_sampled(kTwo);
  for (std::uint64_t pass = 0; pass < 250; ++pass) {
    std::vector<float> staged(300 * pi.row_width());
    for (graph::Vertex a = 0; a < 300; ++a) {
      rng::Xoshiro256 nbr_rng = derive_rng(1, rng_label::kNeighbors, pass, a);
      const graph::NeighborSet set = graph::draw_neighbor_set(
          nbr_rng, graph::NeighborMode::kLinkAware, 300, a,
          g.neighbors(a), 16);
      std::fill(g_exact.begin(), g_exact.end(), 0.0);
      std::fill(g_sampled.begin(), g_sampled.end(), 0.0);
      for (std::size_t i = 0; i < set.samples.size(); ++i) {
        general_accumulate_phi_grad(
            pi.row(a), pi.row(set.samples[i].b), terms, blocks,
            set.samples[i].link,
            i < set.exact_prefix ? std::span<double>(g_exact)
                                 : std::span<double>(g_sampled));
      }
      for (std::uint32_t k = 0; k < kTwo; ++k) {
        g_exact[k] += set.sampled_scale * g_sampled[k];
      }
      std::span<float> out(staged.data() + a * pi.row_width(),
                           pi.row_width());
      std::copy(pi.row(a).begin(), pi.row(a).end(), out.begin());
      update_phi_row(1, pass, a, out, g_exact, 1.0, eps, alpha);
    }
    for (graph::Vertex a = 0; a < 300; ++a) {
      std::span<const float> src(staged.data() + a * pi.row_width(),
                                 pi.row_width());
      std::copy(src.begin(), src.end(), pi.row(a).begin());
    }
  }

  std::vector<std::uint32_t> truth(300);
  std::vector<std::uint32_t> predicted(300);
  for (graph::Vertex v = 0; v < 300; ++v) {
    truth[v] = v < 150 ? 0 : 1;
    predicted[v] = pi.pi(v, 0) > pi.pi(v, 1) ? 0 : 1;
  }
  EXPECT_GT(graph::nmi(truth, predicted), 0.7)
      << "phi updates failed to split the bipartite groups";
}

TEST(GeneralSamplerTest, WarmStartAndFreezeAreHonored) {
  const graph::Graph g = make_bipartite(120, 0.2, 0.01, 3);
  rng::Xoshiro256 split_rng(1);
  const graph::HeldOutSplit split(split_rng, g, 60);
  Hyper hyper;
  hyper.num_communities = 2;
  hyper.delta = suggested_delta(g.density());
  SamplerOptions options;
  options.neighbor_mode = NeighborMode::kLinkAware;
  options.num_neighbors = 8;
  options.eval_interval = 0;
  options.seed = 4;

  GeneralSequentialSampler sampler(split.training(), &split, hyper,
                                   options);
  BlockMatrix warm(2);
  warm.set_theta(warm.block_index(0, 1), 0, 7.0);
  warm.set_theta(warm.block_index(0, 1), 1, 3.0);
  warm.refresh_b();
  sampler.warm_start_blocks(warm);
  EXPECT_NEAR(sampler.blocks().b(0, 1), 0.3, 1e-6);

  sampler.freeze_blocks_for(50);
  sampler.run(50);
  // Frozen: B is exactly the warm-start value.
  EXPECT_NEAR(sampler.blocks().b(0, 1), 0.3, 1e-6);
  sampler.run(50);
  // Unfrozen: B moved.
  EXPECT_NE(sampler.blocks().b(0, 1), 0.3f);

  // Warm start after training is a usage error.
  EXPECT_THROW(sampler.warm_start_blocks(warm), scd::UsageError);
}

TEST(GeneralSamplerTest, StateStaysValid) {
  auto f = testing::small_planted_fixture(31, 100, 3, 50);
  GeneralSequentialSampler sampler(f.split->training(), f.split.get(),
                                   f.hyper, f.options);
  sampler.run(100);
  for (std::uint32_t v = 0; v < sampler.pi().num_vertices(); ++v) {
    double sum = 0.0;
    for (std::uint32_t k = 0; k < 3; ++k) {
      ASSERT_GE(sampler.pi().pi(v, k), 0.0f);
      sum += sampler.pi().pi(v, k);
    }
    ASSERT_NEAR(sum, 1.0, 1e-4);
  }
  for (std::uint32_t b = 0; b < sampler.blocks().num_blocks(); ++b) {
    ASSERT_GT(sampler.blocks().theta(b, 0), 0.0);
    ASSERT_GT(sampler.blocks().theta(b, 1), 0.0);
  }
}

TEST(GeneralSamplerTest, AssortativeGraphsAlsoConverge) {
  auto f = testing::small_planted_fixture(41);
  f.options.eval_interval = 0;
  GeneralSequentialSampler sampler(f.split->training(), f.split.get(),
                                   f.hyper, f.options);
  const double initial = sampler.evaluate_perplexity();
  sampler.run(1500);
  EXPECT_LT(sampler.evaluate_perplexity(), 0.85 * initial);
}

}  // namespace
}  // namespace scd::core
