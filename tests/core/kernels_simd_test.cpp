// Scalar vs fused kernel equivalence over randomized rows.
//
// Tolerance: the fused kernels stage per-term products in float and fold
// blocks of float partial sums into a double carry. Every term of the
// Z-like sums is non-negative (w_k >= min(bt_k, dt) > 0), so there is no
// cancellation and the relative error is a few float ulps per
// kFusedBlock-element block — observed ~2e-8 at K = 12288, bounded here
// by kFusedRelTolerance = 1e-5 with a wide margin. Gradient and ratio
// entries are O(1) magnitudes, checked with the same mixed
// absolute/relative bound.
#include "core/kernels_simd.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "random/xoshiro.h"

namespace scd::core {
namespace {

constexpr std::uint32_t kSizes[] = {1, 3, 7, 64, 1000, 12288};

std::vector<float> random_row(rng::Xoshiro256& rng, std::uint32_t k,
                              float phi_sum) {
  std::vector<float> row(k + 1);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(rng.next_double()) + 1e-6f;
    sum += row[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::uint32_t i = 0; i < k; ++i) row[i] *= inv;
  row[k] = phi_sum;
  return row;
}

LikelihoodTerms random_terms(rng::Xoshiro256& rng, std::uint32_t k) {
  std::vector<float> beta(k);
  for (float& b : beta) {
    b = 0.05f + 0.9f * static_cast<float>(rng.next_double());
  }
  LikelihoodTerms terms;
  terms.refresh(beta, 0.01);
  return terms;
}

void expect_close(double fused, double scalar, const char* what,
                  std::uint32_t k, bool y) {
  EXPECT_NEAR(fused, scalar,
              kFusedRelTolerance * (1.0 + std::abs(scalar)))
      << what << " K=" << k << " y=" << y;
}

TEST(KernelsSimdTest, PairLikelihoodMatchesScalar) {
  rng::Xoshiro256 rng(11);
  for (std::uint32_t k : kSizes) {
    const LikelihoodTerms terms = random_terms(rng, k);
    const std::vector<float> row_a = random_row(rng, k, 2.0f);
    const std::vector<float> row_b = random_row(rng, k, 3.0f);
    for (bool y : {false, true}) {
      const double scalar = pair_likelihood(row_a, row_b, terms, y);
      const double fused = fused_pair_likelihood(row_a, row_b, terms, y);
      expect_close(fused, scalar, "Z", k, y);
    }
  }
}

TEST(KernelsSimdTest, PhiGradMatchesScalar) {
  rng::Xoshiro256 rng(13);
  for (std::uint32_t k : kSizes) {
    const LikelihoodTerms terms = random_terms(rng, k);
    const std::vector<float> row_a = random_row(rng, k, 2.0f);
    const std::vector<float> row_b = random_row(rng, k, 3.0f);
    std::vector<float> w(k);
    for (bool y : {false, true}) {
      std::vector<double> g_scalar(k, 0.0);
      std::vector<double> g_fused(k, 0.0);
      const double z_scalar =
          accumulate_phi_grad(row_a, row_b, terms, y, g_scalar);
      const double z_fused =
          fused_accumulate_phi_grad(row_a, row_b, terms, y, g_fused, w);
      expect_close(z_fused, z_scalar, "phi-grad Z", k, y);
      for (std::uint32_t i = 0; i < k; ++i) {
        ASSERT_NEAR(g_fused[i], g_scalar[i],
                    kFusedRelTolerance * (1.0 + std::abs(g_scalar[i])))
            << "grad[" << i << "] K=" << k << " y=" << y;
      }
    }
  }
}

TEST(KernelsSimdTest, ThetaRatioMatchesScalar) {
  rng::Xoshiro256 rng(17);
  for (std::uint32_t k : kSizes) {
    const LikelihoodTerms terms = random_terms(rng, k);
    const std::vector<float> row_a = random_row(rng, k, 2.0f);
    const std::vector<float> row_b = random_row(rng, k, 3.0f);
    std::vector<float> f(k);
    for (bool y : {false, true}) {
      std::vector<double> r_scalar(k, 0.0);
      std::vector<double> r_fused(k, 0.0);
      const double z_scalar =
          accumulate_theta_ratio(row_a, row_b, terms, y, r_scalar);
      const double z_fused =
          fused_accumulate_theta_ratio(row_a, row_b, terms, y, r_fused, f);
      expect_close(z_fused, z_scalar, "ratio Z", k, y);
      for (std::uint32_t i = 0; i < k; ++i) {
        ASSERT_NEAR(r_fused[i], r_scalar[i],
                    kFusedRelTolerance * (1.0 + std::abs(r_scalar[i])))
            << "ratio[" << i << "] K=" << k << " y=" << y;
      }
    }
  }
}

// Accumulation semantics (+=) must be preserved: calling twice doubles.
TEST(KernelsSimdTest, FusedKernelsAccumulate) {
  rng::Xoshiro256 rng(29);
  const std::uint32_t k = 64;
  const LikelihoodTerms terms = random_terms(rng, k);
  const std::vector<float> row_a = random_row(rng, k, 2.0f);
  const std::vector<float> row_b = random_row(rng, k, 3.0f);
  std::vector<float> w(k);
  std::vector<double> once(k, 0.0);
  std::vector<double> twice(k, 0.0);
  fused_accumulate_phi_grad(row_a, row_b, terms, true, once, w);
  fused_accumulate_phi_grad(row_a, row_b, terms, true, twice, w);
  fused_accumulate_phi_grad(row_a, row_b, terms, true, twice, w);
  for (std::uint32_t i = 0; i < k; ++i) {
    EXPECT_NEAR(twice[i], 2.0 * once[i], 1e-12) << i;
  }
}

// The fused SGRLD row update draws the identical noise stream and runs
// the identical per-element arithmetic as the scalar path; only the
// new_sum reduction is reassociated, so the normalized row agrees to a
// couple of float ulps.
TEST(KernelsSimdTest, UpdatePhiRowMatchesScalar) {
  rng::Xoshiro256 rng(19);
  for (std::uint32_t k : kSizes) {
    std::vector<double> grad(k);
    for (double& g : grad) g = 2.0 * rng.next_double() - 1.0;
    std::vector<double> noise(k);
    for (GradientForm form :
         {GradientForm::kRawEqn3, GradientForm::kPreconditioned}) {
      std::vector<float> scalar_row = random_row(rng, k, 2.0f);
      std::vector<float> fused_row = scalar_row;
      update_phi_row(/*seed=*/3, /*iteration=*/5, /*vertex=*/9, scalar_row,
                     grad, /*scale=*/40.0, /*eps=*/0.01, /*alpha=*/0.1,
                     /*noise_factor=*/1.0, form);
      fused_update_phi_row(3, 5, 9, fused_row, grad, 40.0, 0.01, 0.1, 1.0,
                           form, noise);
      for (std::uint32_t i = 0; i <= k; ++i) {
        ASSERT_NEAR(fused_row[i], scalar_row[i],
                    1e-5 * (1.0 + std::abs(scalar_row[i])))
            << "row[" << i << "] K=" << k;
      }
    }
  }
}

// set_kernel_path steers every fast_* dispatcher; the scalar setting must
// reproduce the scalar kernels exactly (bit-for-bit).
TEST(KernelsSimdTest, DispatchHonorsKernelPath) {
  const KernelPath original = kernel_path();
  rng::Xoshiro256 rng(23);
  const std::uint32_t k = 100;
  const LikelihoodTerms terms = random_terms(rng, k);
  const std::vector<float> row_a = random_row(rng, k, 2.0f);
  const std::vector<float> row_b = random_row(rng, k, 3.0f);
  std::vector<float> w(k);

  set_kernel_path(KernelPath::kScalar);
  EXPECT_EQ(kernel_path(), KernelPath::kScalar);
  EXPECT_EQ(fast_pair_likelihood(row_a, row_b, terms, true),
            pair_likelihood(row_a, row_b, terms, true));

  set_kernel_path(KernelPath::kFused);
  EXPECT_EQ(kernel_path(), KernelPath::kFused);
  EXPECT_EQ(fast_pair_likelihood(row_a, row_b, terms, true),
            fused_pair_likelihood(row_a, row_b, terms, true));

  set_kernel_path(original);
}

}  // namespace
}  // namespace scd::core
