#include "core/vertical_cost.h"

#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace scd::core {
namespace {

PhantomWorkload friendster_workload() {
  PhantomWorkload w;
  w.num_vertices = 65'608'366;
  w.avg_degree = 55.0;
  w.minibatch_vertices = 16384;
  w.minibatch_pairs = 8192;
  w.heldout_pairs = 0;
  return w;
}

TEST(VerticalCostTest, ScalesWithKAndM) {
  const PhantomWorkload w = friendster_workload();
  const sim::ComputeModel node = sim::das5_node();
  const double base = vertical_iteration_cost(node, w, 512, 32).total();
  EXPECT_GT(vertical_iteration_cost(node, w, 1024, 32).total(), base);
  PhantomWorkload big_m = w;
  big_m.minibatch_vertices *= 2;
  EXPECT_GT(vertical_iteration_cost(node, big_m, 512, 32).total(), base);
}

TEST(VerticalCostTest, MoreCoresAreFaster) {
  const PhantomWorkload w = friendster_workload();
  const double t16 =
      vertical_iteration_cost(sim::das5_node(16), w, 1024, 32).total();
  const double t40 =
      vertical_iteration_cost(sim::hpc_cloud_node(40), w, 1024, 32).total();
  // 40 slower-clocked cores still beat 16 faster ones on this workload
  // (Fig. 4a's observation).
  EXPECT_LT(t40, t16);
}

TEST(VerticalCostTest, UpdatePhiDominatesAtLargeK) {
  const PhantomWorkload w = friendster_workload();
  const VerticalIterationCost cost =
      vertical_iteration_cost(sim::das5_node(), w, 12288, 32);
  EXPECT_GT(cost.update_phi, cost.update_pi);
  EXPECT_GT(cost.update_phi, cost.update_beta_theta);
  EXPECT_GT(cost.update_phi, cost.draw_minibatch);
}

// Fig. 4b's headline claim, encoded as a test: at com-Friendster scale
// the 64-node distributed configuration beats the 40-core 1TB machine,
// and the gap widens with K.
TEST(VerticalCostTest, DistributedBeatsVerticalAtScaleWithWideningGap) {
  const PhantomWorkload w = friendster_workload();
  Hyper hyper;
  DistributedOptions options;
  options.base.num_neighbors = 32;
  options.base.eval_interval = 0;

  double previous_ratio = 0.0;
  for (std::uint32_t k : {256u, 512u, 1024u, 2048u}) {
    hyper.num_communities = k;
    sim::SimCluster::Config config;
    config.num_ranks = 65;
    sim::SimCluster cluster(config);
    DistributedSampler dist(cluster, w, hyper, options);
    const double distributed =
        dist.run(6).avg_iteration_seconds;
    const double vertical =
        vertical_iteration_cost(sim::hpc_cloud_node(40), w, k, 32).total();
    EXPECT_LT(distributed, vertical) << "K=" << k;
    const double ratio = vertical / distributed;
    EXPECT_GT(ratio, previous_ratio * 0.8) << "gap shrank sharply at K=" << k;
    previous_ratio = ratio;
  }
  // Overall, the advantage at K=2048 should be substantial.
  EXPECT_GT(previous_ratio, 3.0);
}

}  // namespace
}  // namespace scd::core
