#include "core/perplexity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace scd::core {
namespace {

TEST(PerplexityTest, SingleSampleMatchesClosedForm) {
  const std::vector<graph::HeldOutPair> pairs = {
      {0, 1, true}, {2, 3, false}};
  PerplexityEvaluator eval(pairs);
  eval.add_sample_prob(0, 0.5);
  eval.add_sample_prob(1, 0.25);
  eval.finish_sample();
  const double expected_sum = std::log(0.5) + std::log(0.25);
  EXPECT_NEAR(eval.sum_log_avg(), expected_sum, 1e-12);
  EXPECT_NEAR(PerplexityEvaluator::perplexity(eval.sum_log_avg(), 2),
              std::exp(-expected_sum / 2.0), 1e-12);
}

TEST(PerplexityTest, AveragesProbabilitiesNotLogs) {
  // Eqn 7 averages p across samples *before* the log.
  const std::vector<graph::HeldOutPair> pairs = {{0, 1, true}};
  PerplexityEvaluator eval(pairs);
  eval.add_sample_prob(0, 0.1);
  eval.finish_sample();
  eval.add_sample_prob(0, 0.9);
  eval.finish_sample();
  EXPECT_NEAR(eval.sum_log_avg(), std::log(0.5), 1e-12);
  EXPECT_EQ(eval.num_samples(), 2u);
}

TEST(PerplexityTest, PerfectPredictionGivesPerplexityOne) {
  EXPECT_NEAR(PerplexityEvaluator::perplexity(0.0, 10), 1.0, 1e-12);
}

TEST(PerplexityTest, WorsePredictionsGiveHigherPerplexity) {
  const double good = PerplexityEvaluator::perplexity(10 * std::log(0.8), 10);
  const double bad = PerplexityEvaluator::perplexity(10 * std::log(0.2), 10);
  EXPECT_GT(bad, good);
  EXPECT_GT(good, 1.0);
}

TEST(PerplexityTest, EmptyCasesThrow) {
  const std::vector<graph::HeldOutPair> pairs = {{0, 1, true}};
  PerplexityEvaluator eval(pairs);
  EXPECT_THROW(eval.sum_log_avg(), scd::UsageError);  // no samples yet
  EXPECT_THROW(PerplexityEvaluator::perplexity(0.0, 0), scd::UsageError);
}

TEST(PerplexityTest, EvaluateHelperUsesRowProvider) {
  const std::vector<graph::HeldOutPair> pairs = {{0, 1, true},
                                                 {0, 1, false}};
  PerplexityEvaluator eval(pairs);
  // Two vertices, K = 2, both fully in community 0 with beta_0 = 0.7.
  const std::vector<float> row = {1.0f, 0.0f, 1.0f};  // [pi | phi_sum]
  LikelihoodTerms terms;
  const std::vector<float> beta = {0.7f, 0.5f};
  terms.refresh(beta, 0.01);
  const double perp = eval.evaluate(
      terms, [&](graph::Vertex) { return std::span<const float>(row); });
  // p(link) = 0.7, p(non-link) = 0.3.
  const double expected =
      std::exp(-(std::log(0.7) + std::log(0.3)) / 2.0);
  EXPECT_NEAR(perp, expected, 1e-6);
}

}  // namespace
}  // namespace scd::core
