// Corrupted-input matrix for the checkpoint loader: every byte string
// here is hostile (truncated, bit-flipped, or outright garbage) and the
// loader must answer each with a clear scd::DataError — never UB, never
// a giant allocation sized from a garbage header, never a half-filled
// matrix passed off as loaded. Runs under the asan preset, which would
// catch the UB outcomes.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "quant/row_codec.h"

namespace scd::core {
namespace {

Checkpoint make_checkpoint(std::uint32_t n = 12, std::uint32_t k = 5) {
  Checkpoint c;
  c.iteration = 42;
  c.hyper.num_communities = k;
  c.hyper.delta = 1e-3;
  c.pi = PiMatrix(n, k);
  c.pi.init_random(7);
  c.global = GlobalState(k);
  c.global.init_random(7, c.hyper);
  return c;
}

std::string bytes_for(quant::RowCodec codec) {
  return checkpoint_to_bytes(make_checkpoint(), codec);
}

void expect_rejected(const std::string& bytes) {
  EXPECT_THROW((void)checkpoint_from_bytes(bytes), scd::DataError);
}

/// Overwrite sizeof(T) bytes at `offset` with `value`.
template <typename T>
std::string patched(std::string bytes, std::size_t offset, T value) {
  std::memcpy(bytes.data() + offset, &value, sizeof(T));
  return bytes;
}

// Header layout (offsets in bytes): magic u64 @0, version u32 @8,
// iteration u64 @12, K u32 @20, alpha f64 @24, eta0 f64 @32,
// eta1 f64 @40, delta f64 @48, n u32 @56, then (v2/v3) codec tag u32.
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kKOffset = 20;
constexpr std::size_t kDeltaOffset = 48;
constexpr std::size_t kNOffset = 56;
constexpr std::size_t kTagOffset = 60;

const quant::RowCodec kAllCodecs[] = {
    quant::RowCodec::kFloat32,       quant::RowCodec::kFp16,
    quant::RowCodec::kInt8,          quant::RowCodec::kSparseTopR,
    quant::RowCodec::kSparseTopRFp16, quant::RowCodec::kSparseTopRInt8,
};

// Every strict prefix of a valid checkpoint must be rejected — the
// exhaustive truncation sweep, for every on-disk version (v1 fp32, v2
// dense-encoded, v3 sparse length-prefixed).
TEST(CheckpointCorruptTest, EveryTruncationRejectedAllCodecs) {
  for (const quant::RowCodec codec : kAllCodecs) {
    const std::string full = bytes_for(codec);
    // Sweep all short prefixes near field boundaries, and sample the
    // (larger) row/theta body with a stride to keep the test quick.
    for (std::size_t cut = 0; cut < full.size();
         cut += (cut < 80 ? 1 : 7)) {
      EXPECT_THROW((void)checkpoint_from_bytes(full.substr(0, cut)),
                   scd::DataError)
          << "codec " << quant::codec_name(codec) << " cut " << cut;
    }
  }
}

TEST(CheckpointCorruptTest, EmptyAndGarbageRejected) {
  expect_rejected("");
  expect_rejected("x");
  expect_rejected(std::string(4096, '\xab'));
  std::string zeros(4096, '\0');
  expect_rejected(zeros);
}

TEST(CheckpointCorruptTest, BadMagicRejected) {
  std::string bytes = bytes_for(quant::RowCodec::kFloat32);
  bytes[0] ^= 0x01;
  expect_rejected(bytes);
}

TEST(CheckpointCorruptTest, UnknownVersionRejected) {
  const std::string bytes = bytes_for(quant::RowCodec::kFloat32);
  expect_rejected(patched<std::uint32_t>(bytes, kVersionOffset, 0));
  expect_rejected(patched<std::uint32_t>(bytes, kVersionOffset, 4));
  expect_rejected(patched<std::uint32_t>(bytes, kVersionOffset, 0xffffffff));
}

TEST(CheckpointCorruptTest, CorruptHyperRejected) {
  const std::string bytes = bytes_for(quant::RowCodec::kFloat32);
  // delta outside (0, 1) fails hyper validation with a clear message.
  expect_rejected(patched<double>(bytes, kDeltaOffset, -1.0));
  expect_rejected(patched<double>(bytes, kDeltaOffset, 7.5));
  // K = 0 fails "need at least one community".
  expect_rejected(patched<std::uint32_t>(bytes, kKOffset, 0));
}

// The allocation guards: a garbage n or K must be rejected by the
// header/stream sanity checks BEFORE the loader sizes a PiMatrix from
// them (a ~16-byte file claiming 4 billion vertices must not allocate
// terabytes or crash).
TEST(CheckpointCorruptTest, HugeVertexCountRejectedBeforeAllocation) {
  for (const quant::RowCodec codec : kAllCodecs) {
    const std::string bytes = bytes_for(codec);
    expect_rejected(patched<std::uint32_t>(bytes, kNOffset, 0xffffffff));
    expect_rejected(patched<std::uint32_t>(bytes, kNOffset, 1u << 30));
  }
}

TEST(CheckpointCorruptTest, HugeCommunityCountRejectedBeforeAllocation) {
  const std::string bytes = bytes_for(quant::RowCodec::kFloat32);
  // K = 2^32 - 1 would overflow the K+1 row width; the sanity cap
  // rejects it first.
  expect_rejected(patched<std::uint32_t>(bytes, kKOffset, 0xffffffff));
  expect_rejected(patched<std::uint32_t>(bytes, kKOffset, (1u << 24) + 1));
}

TEST(CheckpointCorruptTest, ZeroVerticesRejected) {
  const std::string bytes = bytes_for(quant::RowCodec::kFloat32);
  expect_rejected(patched<std::uint32_t>(bytes, kNOffset, 0));
}

TEST(CheckpointCorruptTest, BadCodecTagRejected) {
  const std::string v2 = bytes_for(quant::RowCodec::kFp16);
  expect_rejected(patched<std::uint32_t>(v2, kTagOffset, 0xffffffff));
  expect_rejected(patched<std::uint32_t>(v2, kTagOffset, 250));
  // Cross-version tag confusion: a sparse tag in a v2 file and a dense
  // tag in a v3 file are both structural lies.
  expect_rejected(patched<std::uint32_t>(
      v2, kTagOffset,
      static_cast<std::uint32_t>(quant::RowCodec::kSparseTopR)));
  const std::string v3 = bytes_for(quant::RowCodec::kSparseTopR);
  expect_rejected(patched<std::uint32_t>(
      v3, kTagOffset,
      static_cast<std::uint32_t>(quant::RowCodec::kFloat32)));
}

TEST(CheckpointCorruptTest, SparseRowLengthViolationsRejected) {
  const std::string v3 = bytes_for(quant::RowCodec::kSparseTopR);
  // The first row's u32 length prefix sits right after the tag.
  constexpr std::size_t kFirstRowLen = kTagOffset + 4;
  // Zero-length and absurd lengths are outside (0, capacity].
  expect_rejected(patched<std::uint32_t>(v3, kFirstRowLen, 0));
  expect_rejected(patched<std::uint32_t>(v3, kFirstRowLen, 0xffffffff));
  expect_rejected(patched<std::uint32_t>(v3, kFirstRowLen, 1u << 20));
}

// Loader survives a row-level bit flip without structural failure: the
// decoded value changes but the checkpoint still loads (payload bytes
// are not integrity-checked — only structure is). This documents the
// boundary of the guarantee.
TEST(CheckpointCorruptTest, PayloadBitFlipStillLoadsStructurally) {
  std::string bytes = bytes_for(quant::RowCodec::kFloat32);
  bytes[kNOffset + 4 + 2] ^= 0x10;  // inside the first pi row
  EXPECT_NO_THROW((void)checkpoint_from_bytes(bytes));
}

// A checkpoint embedded at the head of a longer stream still loads (the
// size check is a lower bound, not an exact-length demand).
TEST(CheckpointCorruptTest, TrailingBytesTolerated) {
  std::string bytes = bytes_for(quant::RowCodec::kFloat32);
  bytes += std::string(128, '\x7f');
  EXPECT_NO_THROW((void)checkpoint_from_bytes(bytes));
}

}  // namespace
}  // namespace scd::core
