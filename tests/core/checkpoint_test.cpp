#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/parallel_sampler.h"
#include "core/sequential_sampler.h"
#include "tests/core/test_fixtures.h"

namespace scd::core {
namespace {

using testing::small_planted_fixture;

Checkpoint make_checkpoint() {
  Checkpoint c;
  c.iteration = 1234;
  c.hyper.num_communities = 6;
  c.hyper.alpha = 0.05;
  c.hyper.delta = 1e-4;
  c.pi = PiMatrix(20, 6);
  c.pi.init_random(9);
  c.global = GlobalState(6);
  c.global.init_random(9, c.hyper);
  return c;
}

TEST(CheckpointTest, StreamRoundTripIsExact) {
  const Checkpoint original = make_checkpoint();
  std::stringstream buffer;
  save_checkpoint(buffer, original);
  const Checkpoint loaded = load_checkpoint(buffer);
  EXPECT_EQ(loaded.iteration, original.iteration);
  EXPECT_EQ(loaded.hyper.num_communities, original.hyper.num_communities);
  EXPECT_DOUBLE_EQ(loaded.hyper.alpha, original.hyper.alpha);
  EXPECT_DOUBLE_EQ(loaded.hyper.delta, original.hyper.delta);
  for (std::uint32_t v = 0; v < 20; ++v) {
    for (std::uint32_t i = 0; i < 7; ++i) {
      ASSERT_EQ(loaded.pi.row(v)[i], original.pi.row(v)[i]);
    }
  }
  for (std::uint32_t k = 0; k < 6; ++k) {
    EXPECT_EQ(loaded.global.theta(k, 0), original.global.theta(k, 0));
    EXPECT_EQ(loaded.global.theta(k, 1), original.global.theta(k, 1));
    EXPECT_EQ(loaded.global.beta(k), original.global.beta(k));
  }
}

TEST(CheckpointTest, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "not a checkpoint at all, sorry";
  EXPECT_THROW(load_checkpoint(buffer), scd::DataError);
}

TEST(CheckpointTest, TruncationRejected) {
  const Checkpoint original = make_checkpoint();
  std::stringstream buffer;
  save_checkpoint(buffer, original);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_checkpoint(cut), scd::DataError);
}

TEST(CheckpointTest, FileRoundTrip) {
  const Checkpoint original = make_checkpoint();
  const std::string path = ::testing::TempDir() + "scd_ckpt_test.bin";
  save_checkpoint_file(path, original);
  const Checkpoint loaded = load_checkpoint_file(path);
  EXPECT_EQ(loaded.iteration, original.iteration);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileRejected) {
  EXPECT_THROW(load_checkpoint_file("/no/such/checkpoint.bin"),
               scd::DataError);
}

// The headline property: resume == uninterrupted, bit for bit.
TEST(CheckpointTest, ResumedRunContinuesExactTrajectory) {
  auto f = small_planted_fixture(8080, 120, 4, 60);
  f.options.eval_interval = 10;
  SequentialSampler uninterrupted(f.split->training(), f.split.get(),
                                  f.hyper, f.options);
  uninterrupted.run(80);

  SequentialSampler first_half(f.split->training(), f.split.get(), f.hyper,
                               f.options);
  first_half.run(40);
  std::stringstream buffer;
  save_checkpoint(buffer, first_half.checkpoint());

  SequentialSampler resumed(f.split->training(), f.split.get(), f.hyper,
                            f.options);
  resumed.restore(load_checkpoint(buffer));
  EXPECT_EQ(resumed.iteration(), 40u);
  resumed.run(40);

  const PiMatrix& a = uninterrupted.pi();
  const PiMatrix& b = resumed.pi();
  for (std::uint32_t v = 0; v < a.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < a.num_communities(); ++k) {
      ASSERT_EQ(a.pi(v, k), b.pi(v, k)) << "v=" << v << " k=" << k;
    }
  }
  for (std::uint32_t k = 0; k < f.hyper.num_communities; ++k) {
    EXPECT_EQ(uninterrupted.global().beta(k), resumed.global().beta(k));
  }
}

TEST(CheckpointTest, BytesRoundTripIsExact) {
  const Checkpoint original = make_checkpoint();
  const std::string bytes = checkpoint_to_bytes(original);
  const Checkpoint loaded = checkpoint_from_bytes(bytes);
  EXPECT_EQ(loaded.iteration, original.iteration);
  for (std::uint32_t v = 0; v < 20; ++v) {
    for (std::uint32_t i = 0; i < 7; ++i) {
      ASSERT_EQ(loaded.pi.row(v)[i], original.pi.row(v)[i]);
    }
  }
  for (std::uint32_t k = 0; k < 6; ++k) {
    EXPECT_EQ(loaded.global.theta(k, 0), original.global.theta(k, 0));
    EXPECT_EQ(loaded.global.beta(k), original.global.beta(k));
  }
  EXPECT_THROW(checkpoint_from_bytes(bytes.substr(0, bytes.size() / 3)),
               scd::DataError);
  EXPECT_THROW(checkpoint_from_bytes("garbage"), scd::DataError);
}

// Restoring at an iteration that is NOT an eval boundary must still
// reproduce the uninterrupted trajectory bit-for-bit: every RNG stream
// is keyed on the iteration counter carried by the checkpoint, not on
// anything accumulated between evals.
TEST(CheckpointTest, MidIntervalRestoreReproducesTrajectory) {
  auto f = small_planted_fixture(6060, 120, 4, 60);
  f.options.eval_interval = 25;  // evals at 25, 50, 75
  SequentialSampler uninterrupted(f.split->training(), f.split.get(),
                                  f.hyper, f.options);
  uninterrupted.run(80);

  SequentialSampler first_part(f.split->training(), f.split.get(), f.hyper,
                               f.options);
  first_part.run(35);  // between the first and second eval
  const std::string bytes = checkpoint_to_bytes(first_part.checkpoint());

  SequentialSampler resumed(f.split->training(), f.split.get(), f.hyper,
                            f.options);
  resumed.restore(checkpoint_from_bytes(bytes));
  EXPECT_EQ(resumed.iteration(), 35u);
  resumed.run(45);

  const PiMatrix& a = uninterrupted.pi();
  const PiMatrix& b = resumed.pi();
  for (std::uint32_t v = 0; v < a.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < a.num_communities(); ++k) {
      ASSERT_EQ(a.pi(v, k), b.pi(v, k)) << "v=" << v << " k=" << k;
    }
  }
  for (std::uint32_t k = 0; k < f.hyper.num_communities; ++k) {
    EXPECT_EQ(uninterrupted.global().beta(k), resumed.global().beta(k));
    EXPECT_EQ(uninterrupted.global().theta(k, 0),
              resumed.global().theta(k, 0));
    EXPECT_EQ(uninterrupted.global().theta(k, 1),
              resumed.global().theta(k, 1));
  }
}

TEST(CheckpointTest, CrossSamplerHandoff) {
  // Train with the parallel sampler, checkpoint, resume sequentially:
  // the engines share state formats and trajectories.
  auto f = small_planted_fixture(9090, 120, 4, 60);
  f.options.eval_interval = 0;
  ParallelSampler parallel(f.split->training(), f.split.get(), f.hyper,
                           f.options, 4);
  parallel.run(30);

  SequentialSampler sequential(f.split->training(), f.split.get(),
                               f.hyper, f.options);
  sequential.restore(parallel.checkpoint());
  sequential.run(30);

  SequentialSampler reference(f.split->training(), f.split.get(), f.hyper,
                              f.options);
  reference.run(60);
  for (std::uint32_t k = 0; k < f.hyper.num_communities; ++k) {
    EXPECT_NEAR(sequential.global().beta(k), reference.global().beta(k),
                1e-6);
  }
}

TEST(CheckpointTest, RestoreValidatesShape) {
  auto f = small_planted_fixture(1010, 120, 4, 60);
  SequentialSampler sampler(f.split->training(), f.split.get(), f.hyper,
                            f.options);
  Checkpoint wrong = make_checkpoint();  // 20 vertices, K=6
  EXPECT_THROW(sampler.restore(wrong), scd::UsageError);
}

}  // namespace
}  // namespace scd::core
