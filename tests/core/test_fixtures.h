// Shared fixtures for the sampler integration tests: a small planted
// graph with a held-out split, and default hyper/options tuned so a few
// hundred iterations converge visibly.
#pragma once

#include <memory>

#include "core/hyper.h"
#include "core/options.h"
#include "graph/generator.h"
#include "graph/heldout.h"

namespace scd::core::testing {

struct Fixture {
  graph::GeneratedGraph generated;
  std::unique_ptr<graph::HeldOutSplit> split;
  Hyper hyper;
  SamplerOptions options;
};

/// Easy recovery setting: strong communities, light overlap.
inline Fixture small_planted_fixture(std::uint64_t seed = 4242,
                                     graph::Vertex n = 200,
                                     std::uint32_t k = 4,
                                     std::size_t heldout_pairs = 100) {
  Fixture f;
  rng::Xoshiro256 gen_rng(seed);
  graph::PlantedConfig config;
  config.num_vertices = n;
  config.num_communities = k;
  config.p_two_memberships = 0.2;
  config.p_three_memberships = 0.0;
  config.beta_lo = 0.25;
  config.beta_hi = 0.4;
  config.delta = 2e-3;
  f.generated = graph::generate_planted(gen_rng, config);

  rng::Xoshiro256 split_rng(seed + 1);
  f.split = std::make_unique<graph::HeldOutSplit>(
      split_rng, f.generated.graph, heldout_pairs);

  f.hyper.num_communities = k;
  f.hyper.delta =
      suggested_delta(f.generated.graph.density());
  f.options.minibatch.strategy =
      graph::MinibatchStrategy::kStratifiedRandomNode;
  f.options.minibatch.nonlink_partitions = 8;
  f.options.num_neighbors = 24;
  f.options.eval_interval = 50;
  f.options.step.a = 0.05;
  f.options.step.b = 512.0;
  f.options.step.c = 0.55;
  f.options.seed = seed + 2;
  return f;
}

}  // namespace scd::core::testing
