#include "core/sequential_sampler.h"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace scd::core {
namespace {

using testing::small_planted_fixture;

TEST(SequentialSamplerTest, PerplexityDropsOnPlantedGraph) {
  auto f = small_planted_fixture();
  SequentialSampler sampler(f.split->training(), f.split.get(), f.hyper,
                            f.options);
  const double initial = sampler.evaluate_perplexity();
  // Note Eqn 7 averages probabilities over ALL samples collected so far,
  // so the reported perplexity lags the current state early in training.
  sampler.run(2000);
  ASSERT_FALSE(sampler.history().empty());
  const double final_perp = sampler.history().back().perplexity;
  EXPECT_LT(final_perp, 0.85 * initial)
      << "initial=" << initial << " final=" << final_perp;
  // The oracle perplexity of this planted setting is ~1.9; the sampler
  // should be well on its way there.
  EXPECT_LT(final_perp, 2.6);
}

TEST(SequentialSamplerTest, StateStaysOnSimplexThroughoutTraining) {
  auto f = small_planted_fixture(777, 120, 3, 60);
  SequentialSampler sampler(f.split->training(), f.split.get(), f.hyper,
                            f.options);
  for (int round = 0; round < 5; ++round) {
    sampler.run(40);
    const PiMatrix& pi = sampler.pi();
    for (std::uint32_t v = 0; v < pi.num_vertices(); ++v) {
      double sum = 0.0;
      for (std::uint32_t k = 0; k < pi.num_communities(); ++k) {
        ASSERT_GE(pi.pi(v, k), 0.0f);
        sum += pi.pi(v, k);
      }
      ASSERT_NEAR(sum, 1.0, 1e-4) << "vertex " << v;
      ASSERT_GT(pi.phi_sum(v), 0.0f);
    }
    for (std::uint32_t k = 0; k < f.hyper.num_communities; ++k) {
      ASSERT_GT(sampler.global().beta(k), 0.0f);
      ASSERT_LT(sampler.global().beta(k), 1.0f);
      ASSERT_GT(sampler.global().theta(k, 0), 0.0);
      ASSERT_GT(sampler.global().theta(k, 1), 0.0);
    }
  }
}

TEST(SequentialSamplerTest, FullyDeterministicAcrossRuns) {
  auto f1 = small_planted_fixture(99);
  auto f2 = small_planted_fixture(99);
  SequentialSampler a(f1.split->training(), f1.split.get(), f1.hyper,
                      f1.options);
  SequentialSampler b(f2.split->training(), f2.split.get(), f2.hyper,
                      f2.options);
  a.run(120);
  b.run(120);
  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t i = 0; i < a.history().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history()[i].perplexity, b.history()[i].perplexity);
  }
  for (std::uint32_t k = 0; k < f1.hyper.num_communities; ++k) {
    EXPECT_EQ(a.global().beta(k), b.global().beta(k));
  }
}

TEST(SequentialSamplerTest, DifferentSeedsDiverge) {
  auto f1 = small_planted_fixture(99);
  auto f2 = small_planted_fixture(99);
  f2.options.seed = f1.options.seed + 1;
  SequentialSampler a(f1.split->training(), f1.split.get(), f1.hyper,
                      f1.options);
  SequentialSampler b(f2.split->training(), f2.split.get(), f2.hyper,
                      f2.options);
  a.run(60);
  b.run(60);
  EXPECT_NE(a.history().back().perplexity, b.history().back().perplexity);
}

TEST(SequentialSamplerTest, RandomPairStrategyAlsoConverges) {
  auto f = small_planted_fixture(55);
  f.options.minibatch.strategy = graph::MinibatchStrategy::kRandomPair;
  f.options.minibatch.num_pairs = 64;
  SequentialSampler sampler(f.split->training(), f.split.get(), f.hyper,
                            f.options);
  const double initial = sampler.evaluate_perplexity();
  sampler.run(1500);
  EXPECT_LT(sampler.history().back().perplexity, 0.9 * initial);
}

TEST(SequentialSamplerTest, RunsWithoutHeldOutSplit) {
  auto f = small_planted_fixture(66, 80, 3, 40);
  SequentialSampler sampler(f.generated.graph, nullptr, f.hyper, f.options);
  sampler.run(20);
  EXPECT_EQ(sampler.iteration(), 20u);
  EXPECT_TRUE(sampler.history().empty());
  EXPECT_THROW(sampler.evaluate_perplexity(), scd::UsageError);
}

TEST(SequentialSamplerTest, HistoryRecordsAtEvalInterval) {
  auto f = small_planted_fixture(44);
  f.options.eval_interval = 25;
  SequentialSampler sampler(f.split->training(), f.split.get(), f.hyper,
                            f.options);
  sampler.run(100);
  ASSERT_EQ(sampler.history().size(), 4u);
  EXPECT_EQ(sampler.history()[0].iteration, 25u);
  EXPECT_EQ(sampler.history()[3].iteration, 100u);
}

}  // namespace
}  // namespace scd::core
