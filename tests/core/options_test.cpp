#include "core/options.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd::core {
namespace {

TEST(SamplerOptionsTest, DefaultsAreValid) {
  EXPECT_NO_THROW(SamplerOptions{}.validate());
}

TEST(SamplerOptionsTest, ValidationCatchesBadFields) {
  {
    SamplerOptions options;
    options.num_neighbors = 0;
    EXPECT_THROW(options.validate(), scd::UsageError);
  }
  {
    SamplerOptions options;
    options.init_shape = 0.0;
    EXPECT_THROW(options.validate(), scd::UsageError);
  }
  {
    SamplerOptions options;
    options.noise_factor = -0.5;
    EXPECT_THROW(options.validate(), scd::UsageError);
  }
  {
    SamplerOptions options;
    options.step.c = 0.4;  // violates Robbins-Monro
    EXPECT_THROW(options.validate(), scd::UsageError);
  }
}

TEST(SamplerOptionsTest, MapModeIsValid) {
  SamplerOptions options;
  options.noise_factor = 0.0;
  EXPECT_NO_THROW(options.validate());
}

TEST(SamplerOptionsTest, DefaultsMatchPaperConventions) {
  const SamplerOptions options;
  // Eqn 5 verbatim is the default estimator; the raw Eqn-3 drift is the
  // default form. Changing either default is a behavioural break that
  // should be a conscious decision — hence this pin.
  EXPECT_EQ(options.neighbor_mode, NeighborMode::kUniform);
  EXPECT_EQ(options.gradient_form, GradientForm::kRawEqn3);
  EXPECT_DOUBLE_EQ(options.noise_factor, 1.0);
}

}  // namespace
}  // namespace scd::core
