// Dequant-fused kernels vs their float-span counterparts.
//
// Two properties. Under kFloat32 the enc kernels must be *bit-identical*
// to the float kernels — the reader is a raw float load and the lane
// arithmetic is the same; this is what makes the codec plumbing
// transparent for default configurations (asserted with EXPECT_EQ, no
// tolerance). Under the lossy codecs the enc kernels must agree with the
// float kernels evaluated on the decoded row: dequantization happens
// in-register but produces the same values decode_row materializes, so
// the comparison tolerance covers only float reassociation, not
// quantization error.
#include "core/kernels_simd.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "quant/row_codec.h"
#include "random/xoshiro.h"

namespace scd::core {
namespace {

using quant::RowCodec;

constexpr std::uint32_t kSizes[] = {1, 3, 7, 64, 1000, 4096};
constexpr RowCodec kLossy[] = {RowCodec::kFp16, RowCodec::kInt8};

std::vector<float> random_row(rng::Xoshiro256& rng, std::uint32_t k,
                              float phi_sum) {
  std::vector<float> row(k + 1);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(rng.next_double()) + 1e-6f;
    sum += row[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::uint32_t i = 0; i < k; ++i) row[i] *= inv;
  row[k] = phi_sum;
  return row;
}

LikelihoodTerms random_terms(rng::Xoshiro256& rng, std::uint32_t k) {
  std::vector<float> beta(k);
  for (float& b : beta) {
    b = 0.05f + 0.9f * static_cast<float>(rng.next_double());
  }
  LikelihoodTerms terms;
  terms.refresh(beta, 0.01);
  return terms;
}

std::vector<std::byte> encode(RowCodec codec, std::span<const float> row) {
  std::vector<std::byte> enc(quant::encoded_bytes(
      codec, static_cast<std::uint32_t>(row.size())));
  quant::encode_row(codec, row, enc);
  return enc;
}

std::vector<float> decode(RowCodec codec,
                          std::span<const std::byte> enc,
                          std::uint32_t width) {
  std::vector<float> row(width);
  quant::decode_row(codec, enc, row);
  return row;
}

TEST(QuantKernelsTest, Fp32PairLikelihoodIsBitIdentical) {
  rng::Xoshiro256 rng(51);
  for (const std::uint32_t k : kSizes) {
    const LikelihoodTerms terms = random_terms(rng, k);
    const std::vector<float> a = random_row(rng, k, 2.0f);
    const std::vector<float> b = random_row(rng, k, 3.0f);
    const auto ea = encode(RowCodec::kFloat32, a);
    const auto eb = encode(RowCodec::kFloat32, b);
    for (const bool y : {false, true}) {
      EXPECT_EQ(fused_pair_likelihood_enc(RowCodec::kFloat32, ea, eb, k,
                                          terms, y),
                fused_pair_likelihood(a, b, terms, y))
          << "fused K=" << k << " y=" << y;
      EXPECT_EQ(pair_likelihood_enc(RowCodec::kFloat32, ea, eb, k, terms, y),
                pair_likelihood(a, b, terms, y))
          << "scalar K=" << k << " y=" << y;
    }
  }
}

TEST(QuantKernelsTest, Fp32PhiGradIsBitIdentical) {
  rng::Xoshiro256 rng(53);
  for (const std::uint32_t k : kSizes) {
    const LikelihoodTerms terms = random_terms(rng, k);
    const std::vector<float> a = random_row(rng, k, 2.0f);
    const std::vector<float> b = random_row(rng, k, 3.0f);
    const auto eb = encode(RowCodec::kFloat32, b);
    std::vector<float> w(k);
    for (const bool y : {false, true}) {
      std::vector<double> g_ref(k, 0.5);
      std::vector<double> g_enc(k, 0.5);
      const double z_ref =
          fused_accumulate_phi_grad(a, b, terms, y, g_ref, w);
      const double z_enc = fused_accumulate_phi_grad_enc(
          RowCodec::kFloat32, a, eb, terms, y, g_enc, w);
      EXPECT_EQ(z_enc, z_ref) << "K=" << k << " y=" << y;
      EXPECT_EQ(g_enc, g_ref) << "K=" << k << " y=" << y;
    }
  }
}

TEST(QuantKernelsTest, Fp32ThetaRatioIsBitIdentical) {
  rng::Xoshiro256 rng(55);
  for (const std::uint32_t k : kSizes) {
    const LikelihoodTerms terms = random_terms(rng, k);
    const std::vector<float> a = random_row(rng, k, 2.0f);
    const std::vector<float> b = random_row(rng, k, 3.0f);
    const auto ea = encode(RowCodec::kFloat32, a);
    const auto eb = encode(RowCodec::kFloat32, b);
    std::vector<float> f(k);
    for (const bool y : {false, true}) {
      std::vector<double> r_ref(k, 0.25);
      std::vector<double> r_enc(k, 0.25);
      const double z_ref =
          fused_accumulate_theta_ratio(a, b, terms, y, r_ref, f);
      const double z_enc = fused_accumulate_theta_ratio_enc(
          RowCodec::kFloat32, ea, eb, k, terms, y, r_enc, f);
      EXPECT_EQ(z_enc, z_ref) << "K=" << k << " y=" << y;
      EXPECT_EQ(r_enc, r_ref) << "K=" << k << " y=" << y;
    }
  }
}

// Lossy codecs: the enc kernel on encoded rows must match the float
// kernel on the *decoded* rows — in-register dequantization produces the
// same element values decode_row does, so only reassociation-level
// differences are tolerated.
constexpr double kDequantTol = 1e-6;

void expect_close(double enc, double ref, const char* what,
                  std::uint32_t k) {
  EXPECT_NEAR(enc, ref, kDequantTol * (1.0 + std::abs(ref)))
      << what << " K=" << k;
}

TEST(QuantKernelsTest, LossyPairLikelihoodMatchesDecodedRows) {
  rng::Xoshiro256 rng(61);
  for (const RowCodec codec : kLossy) {
    for (const std::uint32_t k : kSizes) {
      const LikelihoodTerms terms = random_terms(rng, k);
      const std::vector<float> a = random_row(rng, k, 2.0f);
      const std::vector<float> b = random_row(rng, k, 3.0f);
      const auto ea = encode(codec, a);
      const auto eb = encode(codec, b);
      const auto da = decode(codec, ea, k + 1);
      const auto db = decode(codec, eb, k + 1);
      for (const bool y : {false, true}) {
        expect_close(
            fused_pair_likelihood_enc(codec, ea, eb, k, terms, y),
            fused_pair_likelihood(da, db, terms, y), "fused Z", k);
        expect_close(pair_likelihood_enc(codec, ea, eb, k, terms, y),
                     pair_likelihood(da, db, terms, y), "scalar Z", k);
      }
    }
  }
}

TEST(QuantKernelsTest, LossyPhiGradMatchesDecodedRows) {
  rng::Xoshiro256 rng(63);
  for (const RowCodec codec : kLossy) {
    for (const std::uint32_t k : kSizes) {
      const LikelihoodTerms terms = random_terms(rng, k);
      const std::vector<float> a = random_row(rng, k, 2.0f);
      const std::vector<float> b = random_row(rng, k, 3.0f);
      const auto eb = encode(codec, b);
      const auto db = decode(codec, eb, k + 1);
      std::vector<float> w(k);
      for (const bool y : {false, true}) {
        std::vector<double> g_ref(k, 0.0);
        std::vector<double> g_enc(k, 0.0);
        const double z_ref =
            fused_accumulate_phi_grad(a, db, terms, y, g_ref, w);
        const double z_enc = fused_accumulate_phi_grad_enc(
            codec, a, eb, terms, y, g_enc, w);
        expect_close(z_enc, z_ref, "phi-grad Z", k);
        for (std::uint32_t i = 0; i < k; ++i) {
          EXPECT_NEAR(g_enc[i], g_ref[i],
                      kDequantTol * (1.0 + std::abs(g_ref[i])))
              << "K=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(QuantKernelsTest, LossyThetaRatioMatchesDecodedRows) {
  rng::Xoshiro256 rng(65);
  for (const RowCodec codec : kLossy) {
    for (const std::uint32_t k : kSizes) {
      const LikelihoodTerms terms = random_terms(rng, k);
      const std::vector<float> a = random_row(rng, k, 2.0f);
      const std::vector<float> b = random_row(rng, k, 3.0f);
      const auto ea = encode(codec, a);
      const auto eb = encode(codec, b);
      const auto da = decode(codec, ea, k + 1);
      const auto db = decode(codec, eb, k + 1);
      std::vector<float> f(k);
      for (const bool y : {false, true}) {
        std::vector<double> r_ref(k, 0.0);
        std::vector<double> r_enc(k, 0.0);
        const double z_ref =
            fused_accumulate_theta_ratio(da, db, terms, y, r_ref, f);
        const double z_enc = fused_accumulate_theta_ratio_enc(
            codec, ea, eb, k, terms, y, r_enc, f);
        expect_close(z_enc, z_ref, "theta Z", k);
        for (std::uint32_t i = 0; i < k; ++i) {
          EXPECT_NEAR(r_enc[i], r_ref[i],
                      kDequantTol * (1.0 + std::abs(r_ref[i])))
              << "K=" << k << " i=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace scd::core
