// End-to-end codec behavior: trajectory transparency under kFloat32,
// bounded perplexity drift under the lossy codecs, checkpoint formats,
// and the tuner discovering quantization on a comms-bound workload.
#include <cmath>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/distributed_sampler.h"
#include "core/sequential_sampler.h"
#include "quant/row_codec.h"
#include "sim/cluster.h"
#include "tests/core/test_fixtures.h"
#include "tune/tuner.h"
#include "util/error.h"

namespace scd::core {
namespace {

using quant::RowCodec;
using testing::small_planted_fixture;

DistributedResult run_with_codec(RowCodec codec,
                                 std::uint64_t iterations = 60) {
  auto f = small_planted_fixture(907, 150, 4, 80);
  f.options.eval_interval = 20;
  sim::SimCluster::Config cc;
  cc.num_ranks = 5;
  sim::SimCluster cluster(cc);
  DistributedOptions options;
  options.base = f.options;
  options.chunk_vertices = 8;
  options.pi_codec = codec;
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  return dist.run(iterations);
}

// Under kFloat32 the encoded-row worker path must reproduce the
// sequential trajectory exactly like the pre-codec distributed sampler
// did — the codec layer is bit-transparent, not merely close.
TEST(QuantDistributedTest, Fp32CodecMatchesSequentialTrajectory) {
  auto f = small_planted_fixture(907, 150, 4, 80);
  f.options.eval_interval = 20;
  SequentialSampler seq(f.split->training(), f.split.get(), f.hyper,
                        f.options);
  seq.run(60);

  const DistributedResult result = run_with_codec(RowCodec::kFloat32);
  ASSERT_EQ(result.history.size(), seq.history().size());
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_NEAR(result.history[i].perplexity, seq.history()[i].perplexity,
                1e-6 * seq.history()[i].perplexity)
        << "eval point " << i;
  }
}

TEST(QuantDistributedTest, RunsAreBitDeterministicPerCodec) {
  for (const RowCodec codec :
       {RowCodec::kFloat32, RowCodec::kFp16, RowCodec::kInt8}) {
    const DistributedResult a = run_with_codec(codec);
    const DistributedResult b = run_with_codec(codec);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
      EXPECT_EQ(a.history[i].perplexity, b.history[i].perplexity)
          << quant::codec_name(codec) << " eval point " << i;
    }
  }
}

// The acceptance gate: lossy codecs stay within 1% of the fp32 held-out
// perplexity once the fixture converges (short runs compare mid-burn-in
// noise, not posterior quality; 300 iterations is well past the knee).
TEST(QuantDistributedTest, QuantizedPerplexityWithinOnePercentOfFloat) {
  const double fp32 =
      run_with_codec(RowCodec::kFloat32, 300).history.back().perplexity;
  for (const RowCodec codec : {RowCodec::kFp16, RowCodec::kInt8}) {
    const double perp =
        run_with_codec(codec, 300).history.back().perplexity;
    EXPECT_NEAR(perp, fp32, 0.01 * fp32) << quant::codec_name(codec);
  }
}

Checkpoint make_checkpoint(std::uint32_t n = 24, std::uint32_t k = 6) {
  Checkpoint c;
  c.iteration = 4321;
  c.hyper.num_communities = k;
  c.hyper.alpha = 0.05;
  c.hyper.delta = 1e-4;
  c.pi = PiMatrix(n, k);
  c.pi.init_random(17);
  c.global = GlobalState(k);
  c.global.init_random(17, c.hyper);
  return c;
}

TEST(QuantCheckpointTest, Fp32CheckpointIsByteIdenticalToVersion1) {
  const Checkpoint c = make_checkpoint();
  const std::string explicit_fp32 =
      checkpoint_to_bytes(c, RowCodec::kFloat32);
  const std::string default_arg = checkpoint_to_bytes(c);
  EXPECT_EQ(explicit_fp32, default_arg);
  // Version word (after the 8-byte magic) is 1: old readers still work.
  std::uint32_t version;
  std::memcpy(&version, explicit_fp32.data() + 8, sizeof(version));
  EXPECT_EQ(version, 1u);
  const Checkpoint loaded = checkpoint_from_bytes(explicit_fp32);
  for (std::uint32_t v = 0; v < c.pi.num_vertices(); ++v) {
    for (std::uint32_t i = 0; i < c.pi.row_width(); ++i) {
      ASSERT_EQ(loaded.pi.row(v)[i], c.pi.row(v)[i]) << "v=" << v;
    }
  }
}

TEST(QuantCheckpointTest, LossyCheckpointsRoundTripWithinCodecBounds) {
  const Checkpoint c = make_checkpoint();
  const std::string fp32_bytes = checkpoint_to_bytes(c);
  for (const RowCodec codec : {RowCodec::kFp16, RowCodec::kInt8}) {
    const std::string bytes = checkpoint_to_bytes(c, codec);
    EXPECT_LT(bytes.size(), fp32_bytes.size()) << quant::codec_name(codec);
    const Checkpoint loaded = checkpoint_from_bytes(bytes);
    EXPECT_EQ(loaded.iteration, c.iteration);
    for (std::uint32_t v = 0; v < c.pi.num_vertices(); ++v) {
      // Per-row reference: decode(encode(row)) from the codec itself.
      std::vector<std::byte> enc(
          quant::encoded_bytes(codec, c.pi.row_width()));
      std::vector<float> ref(c.pi.row_width());
      quant::encode_row(codec, c.pi.row(v), enc);
      quant::decode_row(codec, enc, ref);
      for (std::uint32_t i = 0; i < c.pi.row_width(); ++i) {
        ASSERT_EQ(loaded.pi.row(v)[i], ref[i])
            << quant::codec_name(codec) << " v=" << v << " i=" << i;
      }
    }
    // Theta is always exact regardless of the pi codec.
    for (std::uint32_t k = 0; k < 6; ++k) {
      EXPECT_EQ(loaded.global.theta(k, 0), c.global.theta(k, 0));
      EXPECT_EQ(loaded.global.theta(k, 1), c.global.theta(k, 1));
    }
  }
}

TEST(QuantCheckpointTest, UnknownCodecTagRejected) {
  std::string bytes = checkpoint_to_bytes(make_checkpoint(),
                                          RowCodec::kInt8);
  // The codec tag is the uint32 after magic(8) + version(4) +
  // iteration(8) + K(4) + four hyper doubles(32) + vertex count(4).
  constexpr std::size_t kTagOffset = 60;
  const std::uint32_t bogus = 99;
  std::memcpy(bytes.data() + kTagOffset, &bogus, sizeof(bogus));
  EXPECT_THROW(checkpoint_from_bytes(bytes), scd::DataError);
}

// Resuming a run from a checkpoint whose codec disagrees with the run's
// configured pi codec must fail loudly, naming both codecs — silently
// re-encoding lossy state would corrupt the trajectory's provenance.
// Every (checkpoint codec, run codec) pair is exercised: the diagonal
// must construct cleanly, everything off it must throw.
TEST(QuantDistributedTest, ResumeRejectsMismatchedCheckpointCodec) {
  auto f = small_planted_fixture(907, 150, 4, 80);
  sim::SimCluster::Config cc;
  cc.num_ranks = 3;

  Checkpoint cp;
  cp.iteration = 10;
  cp.hyper = f.hyper;
  cp.pi = PiMatrix(150, 4);
  cp.pi.init_random(31);
  cp.global = GlobalState(4);
  cp.global.init_random(31, f.hyper);

  const RowCodec all[] = {RowCodec::kFloat32,        RowCodec::kFp16,
                          RowCodec::kInt8,           RowCodec::kSparseTopR,
                          RowCodec::kSparseTopRFp16, RowCodec::kSparseTopRInt8};
  for (const RowCodec cp_codec : all) {
    cp.pi_codec = cp_codec;
    for (const RowCodec run_codec : all) {
      sim::SimCluster cluster(cc);
      DistributedOptions options;
      options.base = f.options;
      options.pi_codec = run_codec;
      options.resume_from = &cp;
      if (cp_codec == run_codec) {
        EXPECT_NO_THROW(DistributedSampler(cluster, f.split->training(),
                                           f.split.get(), f.hyper, options))
            << quant::codec_name(cp_codec);
      } else {
        try {
          DistributedSampler dist(cluster, f.split->training(),
                                  f.split.get(), f.hyper, options);
          FAIL() << "mismatch accepted: checkpoint "
                 << quant::codec_name(cp_codec) << " vs run "
                 << quant::codec_name(run_codec);
        } catch (const scd::UsageError& e) {
          const std::string what = e.what();
          EXPECT_NE(what.find(quant::codec_name(cp_codec)),
                    std::string::npos)
              << what;
          EXPECT_NE(what.find(quant::codec_name(run_codec)),
                    std::string::npos)
              << what;
        }
      }
    }
  }
}

// On a comms-bound workload where pi transfer dominates the iteration,
// the tuner must discover that quantizing the DKV rows is a win: the
// best configuration uses a lossy codec (int8 strictly dominates on the
// modeled cost, which knows nothing about quantization error).
TEST(QuantTuneTest, TunerPicksLossyCodecWhenCommsBound) {
  tune::TuneWorkload w;
  w.num_vertices = 1u << 21;
  w.avg_degree = 32.0;
  w.num_communities = 1024;
  w.sat_vertices = 8192.0;

  tune::SearchSpace s;
  s.dim(tune::Dim::kWorkers) = {8};
  s.dim(tune::Dim::kThreadsPerNode) = {16};
  s.dim(tune::Dim::kPipeline) = {0, 1};
  s.dim(tune::Dim::kMinibatchVertices) = {4096};
  s.dim(tune::Dim::kDkvCacheRows) = {0};
  s.dim(tune::Dim::kAliasDraw) = {0};
  s.dim(tune::Dim::kPiCodec) = {0, 1, 2};
  s.dim(tune::Dim::kSparsity) = {0};
  s.validate();

  const tune::TuneResult result = tune::tune(w, s);
  EXPECT_EQ(result.best.config.pi_codec, RowCodec::kInt8)
      << "best key: " << result.best.config.key();
}

}  // namespace
}  // namespace scd::core
