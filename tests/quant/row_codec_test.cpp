// Codec layouts, round-trip error bounds, and the half-float primitive.
#include "quant/row_codec.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "random/xoshiro.h"
#include "util/error.h"

namespace scd::quant {
namespace {

std::vector<float> random_pi_row(rng::Xoshiro256& rng, std::uint32_t k,
                                 float phi_sum) {
  std::vector<float> row(k + 1);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(rng.next_double()) + 1e-6f;
    sum += row[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::uint32_t i = 0; i < k; ++i) row[i] *= inv;
  row[k] = phi_sum;
  return row;
}

TEST(RowCodecTest, EncodedBytesMatchDocumentedLayouts) {
  for (const std::uint32_t width : {2u, 5u, 257u, 1025u}) {
    EXPECT_EQ(encoded_bytes(RowCodec::kFloat32, width), width * 4u);
    EXPECT_EQ(encoded_bytes(RowCodec::kFp16, width), (width - 1) * 2u + 4u);
    EXPECT_EQ(encoded_bytes(RowCodec::kInt8, width),
              kInt8HeaderBytes + (width - 1) + 4u);
  }
}

TEST(RowCodecTest, NamesRoundTripAndAliasesParse) {
  EXPECT_STREQ(codec_name(RowCodec::kFloat32), "fp32");
  EXPECT_STREQ(codec_name(RowCodec::kFp16), "fp16");
  EXPECT_STREQ(codec_name(RowCodec::kInt8), "int8");
  for (const RowCodec c :
       {RowCodec::kFloat32, RowCodec::kFp16, RowCodec::kInt8}) {
    EXPECT_EQ(codec_from_name(codec_name(c)), c);
  }
  EXPECT_EQ(codec_from_name("float32"), RowCodec::kFloat32);
  EXPECT_EQ(codec_from_name("half"), RowCodec::kFp16);
  EXPECT_THROW(codec_from_name("int4"), scd::UsageError);
  EXPECT_THROW(codec_from_name(""), scd::UsageError);
}

TEST(RowCodecTest, Float32RoundTripIsBitExact) {
  rng::Xoshiro256 rng(31);
  for (const std::uint32_t k : {1u, 7u, 256u, 1024u}) {
    const std::vector<float> row = random_pi_row(rng, k, 123.5f);
    std::vector<std::byte> enc(encoded_bytes(RowCodec::kFloat32, k + 1));
    std::vector<float> dec(k + 1);
    encode_row(RowCodec::kFloat32, row, enc);
    decode_row(RowCodec::kFloat32, enc, dec);
    EXPECT_EQ(dec, row) << "K=" << k;
  }
}

TEST(RowCodecTest, Fp16RoundTripWithinHalfPrecision) {
  rng::Xoshiro256 rng(33);
  for (const std::uint32_t k : {3u, 64u, 1024u}) {
    const std::vector<float> row = random_pi_row(rng, k, 42.25f);
    std::vector<std::byte> enc(encoded_bytes(RowCodec::kFp16, k + 1));
    std::vector<float> dec(k + 1);
    encode_row(RowCodec::kFp16, row, enc);
    decode_row(RowCodec::kFp16, enc, dec);
    // Normal halves carry 11 significand bits: 2^-11 relative under RNE.
    // Entries below 2^-14 land in the subnormal half range, where the
    // quantization grid has absolute spacing 2^-24 (error <= 2^-25).
    for (std::uint32_t i = 0; i < k; ++i) {
      EXPECT_NEAR(dec[i], row[i], std::abs(row[i]) * 0x1p-11f + 0x1p-25f)
          << "K=" << k << " i=" << i;
    }
    // phi_sum tail stays full fp32.
    EXPECT_EQ(dec[k], row[k]) << "K=" << k;
  }
}

TEST(RowCodecTest, Int8RoundTripWithinHalfScale) {
  rng::Xoshiro256 rng(35);
  for (const std::uint32_t k : {3u, 64u, 1024u}) {
    const std::vector<float> row = random_pi_row(rng, k, 7.75f);
    std::vector<std::byte> enc(encoded_bytes(RowCodec::kInt8, k + 1));
    std::vector<float> dec(k + 1);
    encode_row(RowCodec::kInt8, row, enc);
    decode_row(RowCodec::kInt8, enc, dec);
    const auto [lo, hi] = std::minmax_element(row.begin(), row.end() - 1);
    // Quantization step = range/255; RNE puts every entry within half a
    // step (plus float slack in the affine reconstruction).
    const float bound = (*hi - *lo) / 255.0f * 0.5f + 1e-6f;
    for (std::uint32_t i = 0; i < k; ++i) {
      EXPECT_NEAR(dec[i], row[i], bound) << "K=" << k << " i=" << i;
    }
    EXPECT_EQ(dec[k], row[k]) << "K=" << k;
  }
}

TEST(RowCodecTest, Int8ConstantRowIsExact) {
  // Zero range: scale = 0, every entry reconstructs to the offset.
  const std::vector<float> row = {0.25f, 0.25f, 0.25f, 0.25f, 9.0f};
  std::vector<std::byte> enc(encoded_bytes(RowCodec::kInt8, 5));
  std::vector<float> dec(5);
  encode_row(RowCodec::kInt8, row, enc);
  decode_row(RowCodec::kInt8, enc, dec);
  EXPECT_EQ(dec, row);
}

TEST(RowCodecTest, HalfConversionKnownValues) {
  EXPECT_EQ(float_to_half(0.0f), 0x0000u);
  EXPECT_EQ(float_to_half(1.0f), 0x3c00u);
  EXPECT_EQ(float_to_half(-2.0f), 0xc000u);
  EXPECT_EQ(float_to_half(65504.0f), 0x7bffu);  // largest normal half
  EXPECT_EQ(float_to_half(1e9f), 0x7c00u);      // overflow -> +inf
  EXPECT_EQ(half_to_float(0x3c00u), 1.0f);
  EXPECT_EQ(half_to_float(0x7bffu), 65504.0f);
  EXPECT_TRUE(std::isinf(half_to_float(0x7c00u)));
  // Smallest subnormal half survives the round trip.
  EXPECT_EQ(float_to_half(half_to_float(0x0001u)), 0x0001u);
}

TEST(RowCodecTest, HalfConversionRoundTripsEveryHalf) {
  // Exhaustive inverse check over all finite half patterns.
  for (std::uint32_t h = 0; h < 0x10000u; ++h) {
    const std::uint32_t exp = (h >> 10) & 0x1fu;
    if (exp == 0x1fu) continue;  // inf/nan
    EXPECT_EQ(float_to_half(half_to_float(static_cast<std::uint16_t>(h))),
              h);
  }
}

}  // namespace
}  // namespace scd::quant
