// DKV backends under lossy codecs: storage, costs, caching, dedup.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dkv/cached_dkv.h"
#include "dkv/key_index.h"
#include "dkv/local_dkv.h"
#include "dkv/sim_rdma_dkv.h"
#include "quant/row_codec.h"
#include "random/xoshiro.h"

namespace scd::dkv {
namespace {

using quant::RowCodec;

constexpr std::uint32_t kWidth = 65;  // K = 64 plus the phi_sum slot

sim::ComputeModel node() { return sim::ComputeModel{}; }

std::vector<float> make_row(rng::Xoshiro256& rng, std::uint32_t k) {
  std::vector<float> row(k + 1);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(rng.next_double()) + 1e-6f;
    sum += row[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::uint32_t i = 0; i < k; ++i) row[i] *= inv;
  row[k] = 10.0f + static_cast<float>(k);
  return row;
}

void fill(DkvStore& store, std::uint64_t rows, std::uint64_t seed) {
  rng::Xoshiro256 rng(seed);
  for (std::uint64_t v = 0; v < rows; ++v) {
    store.init_row(v, make_row(rng, kWidth - 1));
  }
}

TEST(QuantDkvTest, ValueBytesFollowsCodec) {
  for (const RowCodec codec :
       {RowCodec::kFloat32, RowCodec::kFp16, RowCodec::kInt8}) {
    LocalDkv local(10, kWidth, node(), codec);
    SimRdmaDkv shard(10, kWidth, 4, sim::NetworkModel{}, node(), false,
                     codec);
    EXPECT_EQ(local.codec(), codec);
    EXPECT_EQ(local.value_bytes(), quant::encoded_bytes(codec, kWidth));
    EXPECT_EQ(shard.value_bytes(), quant::encoded_bytes(codec, kWidth));
  }
}

TEST(QuantDkvTest, GetRowsDecodesWithinCodecBounds) {
  for (const RowCodec codec :
       {RowCodec::kFloat32, RowCodec::kFp16, RowCodec::kInt8}) {
    SimRdmaDkv store(20, kWidth, 4, sim::NetworkModel{}, node(), false,
                     codec);
    fill(store, 20, 71);
    rng::Xoshiro256 rng(71);
    const std::vector<std::uint64_t> keys = {3, 17, 3};
    std::vector<float> out(keys.size() * kWidth);
    store.get_rows(0, keys, out);
    rng::Xoshiro256 ref_rng(71);
    std::vector<std::vector<float>> rows;
    for (std::uint64_t v = 0; v < 20; ++v) {
      rows.push_back(make_row(ref_rng, kWidth - 1));
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::vector<float>& ref = rows[keys[i]];
      for (std::uint32_t j = 0; j < kWidth; ++j) {
        const float got = out[i * kWidth + j];
        if (codec == RowCodec::kFloat32 || j == kWidth - 1) {
          EXPECT_EQ(got, ref[j]) << "i=" << i << " j=" << j;
        } else {
          // Codec error bounds are tested precisely in row_codec_test;
          // here it is enough that the store round-trips the encoding.
          EXPECT_NEAR(got, ref[j], 1e-3f) << "i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST(QuantDkvTest, EncodedAndDecodedBatchesChargeTheSameTime) {
  SimRdmaDkv store(64, kWidth, 4, sim::NetworkModel{}, node(), false,
                   RowCodec::kInt8);
  fill(store, 64, 73);
  const std::vector<std::uint64_t> keys = {1, 40, 63, 2};
  std::vector<float> decoded(keys.size() * kWidth);
  std::vector<std::byte> encoded(keys.size() * store.value_bytes());
  const double t_dec = store.get_rows(0, keys, decoded);
  const double t_enc = store.get_rows_encoded(0, keys, encoded);
  EXPECT_DOUBLE_EQ(t_enc, t_dec);
  EXPECT_DOUBLE_EQ(t_dec, store.read_cost_keys(0, keys));
  // The encoded batch is the stored bytes; decoding them reproduces the
  // float batch exactly (same stored codes).
  std::vector<float> rederived(kWidth);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    quant::decode_row(
        RowCodec::kInt8,
        std::span<const std::byte>{encoded.data() + i * store.value_bytes(),
                                   store.value_bytes()},
        rederived);
    for (std::uint32_t j = 0; j < kWidth; ++j) {
      EXPECT_EQ(rederived[j], decoded[i * kWidth + j]) << "i=" << i;
    }
  }
}

TEST(QuantDkvTest, LossyCodecsCostLessOnTheModeledNetwork) {
  // Same keys, same shard layout; the only difference is value_bytes.
  const std::vector<std::uint64_t> keys = {40, 41, 50, 60};  // all remote
  double cost[3] = {};
  for (const RowCodec codec :
       {RowCodec::kFloat32, RowCodec::kFp16, RowCodec::kInt8}) {
    SimRdmaDkv store(64, kWidth, 4, sim::NetworkModel{}, node(), false,
                     codec);
    fill(store, 64, 75);
    cost[static_cast<int>(codec)] = store.read_cost_keys(0, keys);
  }
  EXPECT_LT(cost[1], cost[0]);  // fp16 < fp32
  EXPECT_LT(cost[2], cost[1]);  // int8 < fp16
}

TEST(QuantDkvTest, KeyIndexDedupWithEncodedRows) {
  // The worker loop fetches unique keys encoded and expands refs through
  // remap(); duplicate references must see the identical encoded row.
  SimRdmaDkv store(32, kWidth, 4, sim::NetworkModel{}, node(), false,
                   RowCodec::kFp16);
  fill(store, 32, 77);
  const std::vector<std::uint64_t> refs = {9, 4, 9, 30, 4, 9};
  KeyIndex index;
  index.build(refs);
  ASSERT_EQ(index.unique_keys().size(), 3u);
  const std::size_t vbytes = store.value_bytes();
  std::vector<std::byte> rows(index.unique_keys().size() * vbytes);
  store.get_rows_encoded(0, index.unique_keys(), rows);
  std::vector<float> direct(kWidth);
  std::vector<float> via_remap(kWidth);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    std::vector<float> one(kWidth);
    store.get_rows(0, std::vector<std::uint64_t>{refs[i]}, one);
    const std::size_t slot = index.remap()[i];
    quant::decode_row(
        RowCodec::kFp16,
        std::span<const std::byte>{rows.data() + slot * vbytes, vbytes},
        via_remap);
    EXPECT_EQ(via_remap, one) << "ref " << i;
  }
}

TEST(QuantDkvTest, CachedDkvAccountsHitsOnEncodedRows) {
  SimRdmaDkv inner(64, kWidth, 4, sim::NetworkModel{}, node(), false,
                   RowCodec::kInt8);
  fill(inner, 64, 79);
  CachedDkv cache(inner, 16, node());
  const std::vector<std::uint64_t> keys = {48};  // remote for shard 0
  std::vector<float> out(kWidth);
  const double miss_cost = cache.get_rows(0, keys, out);
  EXPECT_EQ(cache.misses(), 1u);
  std::vector<float> again(kWidth);
  const double hit_cost = cache.get_rows(0, keys, again);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(out, again);  // cache serves the same encoded bytes
  EXPECT_DOUBLE_EQ(hit_cost, cache.hit_cost(1));
  EXPECT_LT(hit_cost, miss_cost);

  // A hit moves value_bytes(), so the int8 cache is cheaper to hit than
  // an fp32 cache of the same shape.
  SimRdmaDkv inner32(64, kWidth, 4, sim::NetworkModel{}, node());
  CachedDkv cache32(inner32, 16, node());
  EXPECT_LT(cache.hit_cost(1), cache32.hit_cost(1));
}

TEST(QuantDkvTest, ReadRowMatchesGetRows) {
  SimRdmaDkv store(16, kWidth, 2, sim::NetworkModel{}, node(), false,
                   RowCodec::kInt8);
  fill(store, 16, 81);
  std::vector<float> via_get(kWidth);
  std::vector<float> via_read(kWidth);
  for (std::uint64_t v = 0; v < 16; ++v) {
    store.get_rows(0, std::vector<std::uint64_t>{v}, via_get);
    store.read_row(v, via_read);
    EXPECT_EQ(via_read, via_get) << "v=" << v;
  }
}

}  // namespace
}  // namespace scd::dkv
