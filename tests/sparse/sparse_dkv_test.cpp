// DKV backends under the sparse top-R codecs: per-row byte accounting,
// phantom/real cost parity, cache behavior and eviction counting.
//
// Storage keeps fixed capacity slots (flat addressing), but every
// byte-proportional cost charges the bytes a row actually occupies —
// quant::row_bytes() — tracked per row as writes re-encode. Phantom
// stores have no rows to measure and price a modeled nnz through the
// same layout formula instead.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dkv/cached_dkv.h"
#include "dkv/local_dkv.h"
#include "dkv/sim_rdma_dkv.h"
#include "quant/row_codec.h"
#include "random/xoshiro.h"
#include "trace/recorder.h"

namespace scd::dkv {
namespace {

using quant::RowCodec;

constexpr std::uint32_t kK = 128;
constexpr std::uint32_t kWidth = kK + 1;

sim::ComputeModel node() { return sim::ComputeModel{}; }

std::vector<float> concentrated_row(rng::Xoshiro256& rng, std::uint32_t k,
                                    std::uint32_t support) {
  std::vector<float> row(k + 1, 0.0f);
  double tsum = 0.0;
  std::vector<double> tail(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    tail[i] = rng.next_double() + 0.1;
    tsum += tail[i];
  }
  for (std::uint32_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(tail[i] / tsum * 0.003);
  }
  std::vector<double> heavy(support);
  double hsum = 0.0;
  for (double& h : heavy) {
    h = 0.5 + rng.next_double();
    hsum += h;
  }
  const std::uint32_t stride = std::max(1u, k / support);
  for (std::uint32_t s = 0; s < support; ++s) {
    row[(s * stride) % k] = static_cast<float>(heavy[s] / hsum * 0.997);
  }
  row[k] = 9.0f;
  return row;
}

void fill_concentrated(DkvStore& store, std::uint64_t rows,
                       std::uint64_t seed, std::uint32_t support = 6) {
  rng::Xoshiro256 rng(seed);
  for (std::uint64_t v = 0; v < rows; ++v) {
    store.init_row(v, concentrated_row(rng, kK, support));
  }
}

TEST(SparseDkvTest, WireBytesTrackActualSparsity) {
  for (const RowCodec codec :
       {RowCodec::kSparseTopR, RowCodec::kSparseTopRFp16,
        RowCodec::kSparseTopRInt8}) {
    SimRdmaDkv store(32, kWidth, 4, sim::NetworkModel{}, node(), false,
                     codec);
    fill_concentrated(store, 32, 301);
    // Concentrated rows keep a handful of entries, so the tracked wire
    // bytes sit far below the capacity slot and the nnz far below K.
    EXPECT_LT(store.avg_row_wire_bytes(),
              0.5 * static_cast<double>(store.value_bytes()))
        << quant::codec_name(codec);
    EXPECT_LT(store.avg_row_nnz(), 16.0) << quant::codec_name(codec);
    EXPECT_GE(store.avg_row_nnz(), 1.0) << quant::codec_name(codec);

    LocalDkv local(32, kWidth, node(), codec);
    fill_concentrated(local, 32, 301);
    EXPECT_NEAR(local.avg_row_wire_bytes(), store.avg_row_wire_bytes(),
                1e-9)
        << quant::codec_name(codec);
    EXPECT_NEAR(local.avg_row_nnz(), store.avg_row_nnz(), 1e-9);
  }
}

TEST(SparseDkvTest, DenseCodecsKeepFixedWireBytes) {
  SimRdmaDkv store(16, kWidth, 4, sim::NetworkModel{}, node(), false,
                   RowCodec::kFp16);
  fill_concentrated(store, 16, 303);
  EXPECT_DOUBLE_EQ(store.avg_row_wire_bytes(),
                   static_cast<double>(store.value_bytes()));
  EXPECT_DOUBLE_EQ(store.avg_row_nnz(), static_cast<double>(kK));
}

TEST(SparseDkvTest, SparseReadsCostLessOnTheModeledNetwork) {
  const std::vector<std::uint64_t> keys = {20, 21, 28, 30};  // all remote
  SimRdmaDkv dense(32, kWidth, 4, sim::NetworkModel{}, node(), false,
                   RowCodec::kFloat32);
  SimRdmaDkv sparse(32, kWidth, 4, sim::NetworkModel{}, node(), false,
                    RowCodec::kSparseTopR);
  fill_concentrated(dense, 32, 305);
  fill_concentrated(sparse, 32, 305);
  EXPECT_LT(sparse.read_cost_keys(0, keys), dense.read_cost_keys(0, keys));
  EXPECT_LT(sparse.write_cost_keys(0, keys),
            dense.write_cost_keys(0, keys));
}

TEST(SparseDkvTest, RewritesRetrackRowBytes) {
  SimRdmaDkv store(8, kWidth, 2, sim::NetworkModel{}, node(), false,
                   RowCodec::kSparseTopR);
  fill_concentrated(store, 8, 307, /*support=*/12);
  const double before = store.avg_row_wire_bytes();
  // Rewrite every row with a much more concentrated one: the tracked
  // average must drop to follow the new encodings.
  rng::Xoshiro256 rng(309);
  for (std::uint64_t v = 0; v < 8; ++v) {
    const std::vector<float> row = concentrated_row(rng, kK, 2);
    store.put_rows(0, std::vector<std::uint64_t>{v},
                   std::span<const float>(row));
  }
  EXPECT_LT(store.avg_row_wire_bytes(), before);
}

TEST(SparseDkvTest, GetRowsDecodesLikeTheCodec) {
  SimRdmaDkv store(12, kWidth, 3, sim::NetworkModel{}, node(), false,
                   RowCodec::kSparseTopRFp16);
  fill_concentrated(store, 12, 311);
  rng::Xoshiro256 ref_rng(311);
  for (std::uint64_t v = 0; v < 12; ++v) {
    const std::vector<float> original = concentrated_row(ref_rng, kK, 6);
    std::vector<std::byte> enc(
        quant::encoded_bytes(RowCodec::kSparseTopRFp16, kWidth));
    quant::encode_row(RowCodec::kSparseTopRFp16, original, enc,
                      store.sparse_eps());
    std::vector<float> ref(kWidth);
    quant::decode_row(RowCodec::kSparseTopRFp16, enc, ref);
    std::vector<float> got(kWidth);
    store.read_row(v, got);
    EXPECT_EQ(got, ref) << "v=" << v;
  }
}

TEST(SparseDkvTest, PhantomModelsRowBytesFromModeledNnz) {
  // Explicit modeled nnz: the phantom prices rows as header + indices +
  // values + tail for exactly that many kept entries.
  SimRdmaDkv phantom(1u << 20, kWidth, 8, sim::NetworkModel{}, node(),
                     /*phantom=*/true, RowCodec::kSparseTopR,
                     quant::kDefaultSparseEps, /*sparse_modeled_nnz=*/4);
  EXPECT_EQ(phantom.modeled_row_bytes(),
            quant::kSparseHeaderBytes +
                quant::sparse_payload_bytes(RowCodec::kSparseTopR, 4, kK));
  EXPECT_DOUBLE_EQ(phantom.avg_row_wire_bytes(),
                   static_cast<double>(phantom.modeled_row_bytes()));
  EXPECT_DOUBLE_EQ(phantom.avg_row_nnz(), 4.0);

  // Auto nnz: clamp(K/16, 8, K).
  SimRdmaDkv auto_phantom(1u << 20, kWidth, 8, sim::NetworkModel{}, node(),
                          true, RowCodec::kSparseTopR);
  EXPECT_DOUBLE_EQ(auto_phantom.avg_row_nnz(), 8.0);  // K=128 -> max(8, 8)

  // A phantom dense store is untouched by the sparse modeling.
  SimRdmaDkv dense_phantom(1u << 20, kWidth, 8, sim::NetworkModel{},
                           node(), true, RowCodec::kInt8);
  EXPECT_DOUBLE_EQ(dense_phantom.avg_row_wire_bytes(),
                   static_cast<double>(dense_phantom.value_bytes()));
}

TEST(SparseDkvTest, PhantomCostMatchesRealStoreWithSameNnz) {
  // A real store whose rows keep exactly `nnz` entries must charge the
  // same keyed costs as a phantom modeling that nnz — cost-only runs
  // stay in lockstep with real ones up to the nnz input.
  constexpr std::uint32_t kNnz = 4;
  SimRdmaDkv real(32, kWidth, 4, sim::NetworkModel{}, node(), false,
                  RowCodec::kSparseTopR);
  rng::Xoshiro256 rng(313);
  for (std::uint64_t v = 0; v < 32; ++v) {
    // Exactly kNnz heavy entries and a zero tail: the adaptive selection
    // keeps precisely those entries.
    std::vector<float> row(kWidth, 0.0f);
    for (std::uint32_t s = 0; s < kNnz; ++s) {
      row[(s * 31) % kK] = 0.25f + 0.01f * static_cast<float>(s);
    }
    row[kK] = 5.0f;
    real.init_row(v, row);
  }
  ASSERT_DOUBLE_EQ(real.avg_row_nnz(), static_cast<double>(kNnz));
  SimRdmaDkv phantom(32, kWidth, 4, sim::NetworkModel{}, node(), true,
                     RowCodec::kSparseTopR, quant::kDefaultSparseEps,
                     kNnz);
  const std::vector<std::uint64_t> keys = {1, 9, 17, 25, 26};
  EXPECT_DOUBLE_EQ(phantom.read_cost_keys(0, keys),
                   real.read_cost_keys(0, keys));
  EXPECT_DOUBLE_EQ(phantom.write_cost_keys(0, keys),
                   real.write_cost_keys(0, keys));
}

TEST(SparseDkvTest, CachedDkvCountsEvictionsAndReportsMetric) {
  SimRdmaDkv inner(64, kWidth, 4, sim::NetworkModel{}, node(), false,
                   RowCodec::kSparseTopR);
  fill_concentrated(inner, 64, 315);
  CachedDkv cache(inner, /*capacity_rows=*/2, node());
  trace::TraceRecorder recorder(5);
  cache.install_trace(&recorder, /*rank_offset=*/1);

  std::vector<float> out(kWidth);
  for (const std::uint64_t key : {20ull, 30ull, 40ull}) {
    cache.get_rows(0, std::vector<std::uint64_t>{key}, out);
  }
  // Capacity 2, three distinct rows: the first insert is displaced.
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.cached_rows(), 2u);
  using trace::Metric;
  EXPECT_EQ(recorder.metrics().counter_total(Metric::kDkvEvictions), 1u);
  EXPECT_EQ(recorder.metrics().counter(Metric::kDkvEvictions, 1), 1u);

  // Coherence flushes are not evictions.
  cache.invalidate_all();
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(recorder.metrics().counter_total(Metric::kDkvEvictions), 1u);
}

TEST(SparseDkvTest, CacheHitStreamsActualSparseBytes) {
  SimRdmaDkv sparse_inner(64, kWidth, 4, sim::NetworkModel{}, node(),
                          false, RowCodec::kSparseTopR);
  fill_concentrated(sparse_inner, 64, 317);
  CachedDkv sparse_cache(sparse_inner, 16, node());
  SimRdmaDkv dense_inner(64, kWidth, 4, sim::NetworkModel{}, node());
  CachedDkv dense_cache(dense_inner, 16, node());
  // Hits price avg_row_wire_bytes, so a sparse cache is cheaper to hit
  // than an fp32 cache of the same shape.
  EXPECT_LT(sparse_cache.hit_cost(8), dense_cache.hit_cost(8));
}

}  // namespace
}  // namespace scd::dkv
