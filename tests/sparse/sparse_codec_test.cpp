// The adaptive top-R sparse codecs: layout, selection, fallback.
//
// Converged pi rows concentrate their mass on a handful of communities;
// the sparse codecs keep the smallest value-descending prefix covering
// (1 - eps) of the row mass and spread the dropped remainder uniformly
// on decode. These tests pin the byte layout (header | sorted indices |
// values | fp32 tail), the capacity-slot semantics (fixed encoded_bytes
// stride, variable row_bytes), the dense fallback sentinel (nnz == K),
// and determinism of the encoding.
#include <algorithm>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "quant/row_codec.h"
#include "random/xoshiro.h"
#include "util/error.h"

namespace scd::quant {
namespace {

constexpr RowCodec kSparseCodecs[] = {RowCodec::kSparseTopR,
                                      RowCodec::kSparseTopRFp16,
                                      RowCodec::kSparseTopRInt8};

/// A row whose mass concentrates on `support` communities, with
/// `tail_mass` spread over the rest — the converged-sampler shape the
/// sparse codecs are built for. Heavy entries are strided across the
/// index range so the sorted-index path is exercised.
std::vector<float> concentrated_row(rng::Xoshiro256& rng, std::uint32_t k,
                                    std::uint32_t support, float tail_mass,
                                    float phi_sum) {
  std::vector<float> row(k + 1, 0.0f);
  std::vector<double> tail(k);
  double tsum = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    tail[i] = rng.next_double() + 0.1;
    tsum += tail[i];
  }
  for (std::uint32_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(tail[i] / tsum * tail_mass);
  }
  std::vector<double> heavy(support);
  double hsum = 0.0;
  for (double& h : heavy) {
    h = 0.5 + rng.next_double();
    hsum += h;
  }
  const std::uint32_t stride = std::max(1u, k / support);
  for (std::uint32_t s = 0; s < support; ++s) {
    row[(s * stride) % k] =
        static_cast<float>(heavy[s] / hsum * (1.0 - tail_mass));
  }
  row[k] = phi_sum;
  return row;
}

std::vector<float> uniform_row(std::uint32_t k, float phi_sum) {
  std::vector<float> row(k + 1, 1.0f / static_cast<float>(k));
  row[k] = phi_sum;
  return row;
}

std::vector<std::byte> encode(RowCodec codec, std::span<const float> row,
                              float eps = kDefaultSparseEps) {
  std::vector<std::byte> enc(
      encoded_bytes(codec, static_cast<std::uint32_t>(row.size())));
  encode_row(codec, row, enc, eps);
  return enc;
}

std::vector<float> decode(RowCodec codec, std::span<const std::byte> enc,
                          std::uint32_t width) {
  std::vector<float> row(width);
  decode_row(codec, enc, row);
  return row;
}

TEST(SparseCodecTest, NamesRoundTripAndAliasesResolve) {
  for (const RowCodec codec : kSparseCodecs) {
    EXPECT_EQ(codec_from_name(codec_name(codec)), codec);
  }
  EXPECT_EQ(codec_from_name("sparse-topr"), RowCodec::kSparseTopR);
  EXPECT_EQ(codec_from_name("sparse"), RowCodec::kSparseTopR);
  EXPECT_EQ(codec_from_name("sparse-topr-fp16"), RowCodec::kSparseTopRFp16);
  EXPECT_EQ(codec_from_name("sparse-topr-int8"), RowCodec::kSparseTopRInt8);
  EXPECT_THROW(codec_from_name("sparse-top-r"), scd::UsageError);
}

TEST(SparseCodecTest, SparsePredicateAndValueCodec) {
  EXPECT_TRUE(is_sparse(RowCodec::kSparseTopR));
  EXPECT_TRUE(is_sparse(RowCodec::kSparseTopRFp16));
  EXPECT_TRUE(is_sparse(RowCodec::kSparseTopRInt8));
  EXPECT_FALSE(is_sparse(RowCodec::kFloat32));
  EXPECT_FALSE(is_sparse(RowCodec::kInt8));
  EXPECT_EQ(value_codec(RowCodec::kSparseTopR), RowCodec::kFloat32);
  EXPECT_EQ(value_codec(RowCodec::kSparseTopRFp16), RowCodec::kFp16);
  EXPECT_EQ(value_codec(RowCodec::kSparseTopRInt8), RowCodec::kInt8);
  EXPECT_EQ(value_codec(RowCodec::kFp16), RowCodec::kFp16);
}

TEST(SparseCodecTest, SparseCodecForLiftsDenseOnly) {
  EXPECT_EQ(sparse_codec_for(RowCodec::kFloat32), RowCodec::kSparseTopR);
  EXPECT_EQ(sparse_codec_for(RowCodec::kFp16), RowCodec::kSparseTopRFp16);
  EXPECT_EQ(sparse_codec_for(RowCodec::kInt8), RowCodec::kSparseTopRInt8);
  EXPECT_THROW(sparse_codec_for(RowCodec::kSparseTopR), scd::UsageError);
}

TEST(SparseCodecTest, ConcentratedRowEncodesSparseForm) {
  rng::Xoshiro256 rng(101);
  for (const RowCodec codec : kSparseCodecs) {
    for (const std::uint32_t k : {64u, 256u, 1024u}) {
      constexpr std::uint32_t kSupport = 8;
      const std::vector<float> row =
          concentrated_row(rng, k, kSupport, 0.002f, 5.0f);
      const auto enc = encode(codec, row);
      const std::uint32_t nnz = row_nnz(codec, k + 1, enc);
      EXPECT_GE(nnz, 1u) << codec_name(codec) << " K=" << k;
      EXPECT_LE(nnz, kSupport) << codec_name(codec) << " K=" << k;
      // Actual bytes follow the layout formula and fit the capacity slot.
      EXPECT_EQ(row_bytes(codec, k + 1, enc),
                kSparseHeaderBytes + sparse_payload_bytes(codec, nnz, k));
      EXPECT_LT(row_bytes(codec, k + 1, enc), encoded_bytes(codec, k + 1));
    }
  }
}

TEST(SparseCodecTest, DecodePreservesMassAndTail) {
  rng::Xoshiro256 rng(103);
  for (const RowCodec codec : kSparseCodecs) {
    const std::uint32_t k = 256;
    const std::vector<float> row = concentrated_row(rng, k, 6, 0.003f, 7.5f);
    const auto enc = encode(codec, row);
    const auto dec = decode(codec, enc, k + 1);
    // phi_sum rides in the fp32 tail, exact under every variant.
    EXPECT_EQ(dec[k], row[k]) << codec_name(codec);
    double orig_mass = 0.0;
    double dec_mass = 0.0;
    for (std::uint32_t i = 0; i < k; ++i) {
      orig_mass += row[i];
      dec_mass += dec[i];
    }
    // Residual spreading keeps the row mass: dropped entries carry
    // residual_mass / (K - nnz) so the total survives the truncation
    // (within the value codec's error on the kept entries).
    const double tol = codec == RowCodec::kSparseTopR ? 1e-5 : 5e-3;
    EXPECT_NEAR(dec_mass, orig_mass, tol) << codec_name(codec);
    // All dropped entries decode to one shared epsilon.
    const std::uint32_t nnz = row_nnz(codec, k + 1, enc);
    ASSERT_LT(nnz, k);
    std::vector<float> sorted(dec.begin(), dec.end() - 1);
    std::sort(sorted.begin(), sorted.end());
    const float eps_value = sorted.front();
    std::uint32_t at_eps = 0;
    for (std::uint32_t i = 0; i < k; ++i) {
      if (dec[i] == eps_value) ++at_eps;
    }
    EXPECT_GE(at_eps, k - nnz) << codec_name(codec);
  }
}

TEST(SparseCodecTest, PureFp32VariantKeepsTopEntriesExact) {
  rng::Xoshiro256 rng(105);
  const std::uint32_t k = 128;
  const std::vector<float> row = concentrated_row(rng, k, 5, 0.002f, 3.0f);
  const auto enc = encode(RowCodec::kSparseTopR, row);
  const auto dec = decode(RowCodec::kSparseTopR, enc, k + 1);
  const std::uint32_t nnz = row_nnz(RowCodec::kSparseTopR, k + 1, enc);
  // The nnz largest entries must round-trip bit-exactly under the fp32
  // value codec; everything else becomes the shared epsilon.
  std::vector<std::uint32_t> order(k);
  for (std::uint32_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return row[a] != row[b] ? row[a] > row[b] : a < b;
  });
  for (std::uint32_t r = 0; r < nnz; ++r) {
    EXPECT_EQ(dec[order[r]], row[order[r]]) << "rank " << r;
  }
}

TEST(SparseCodecTest, UniformRowFallsBackDense) {
  for (const RowCodec codec : kSparseCodecs) {
    for (const std::uint32_t k : {64u, 1000u}) {
      const std::vector<float> row = uniform_row(k, 2.0f);
      const auto enc = encode(codec, row);
      // Sentinel: row_nnz reports the full width-1, and the payload is
      // the value codec's dense encoding behind the 8-byte header.
      EXPECT_EQ(row_nnz(codec, k + 1, enc), k) << codec_name(codec);
      EXPECT_EQ(row_bytes(codec, k + 1, enc),
                kSparseHeaderBytes + encoded_bytes(value_codec(codec), k + 1))
          << codec_name(codec);
      const auto dec = decode(codec, enc, k + 1);
      std::vector<std::byte> dense_enc(
          encoded_bytes(value_codec(codec), k + 1));
      encode_row(value_codec(codec), row, dense_enc);
      const auto dense_dec = decode(value_codec(codec), dense_enc, k + 1);
      EXPECT_EQ(dec, dense_dec) << codec_name(codec) << " K=" << k;
    }
  }
}

TEST(SparseCodecTest, EncodeIsDeterministic) {
  rng::Xoshiro256 rng(107);
  for (const RowCodec codec : kSparseCodecs) {
    const std::uint32_t k = 512;
    const std::vector<float> row = concentrated_row(rng, k, 10, 0.004f, 4.0f);
    const auto a = encode(codec, row);
    const auto b = encode(codec, row);
    // Byte-identical including the zeroed capacity-slot suffix, so
    // stores and caches can compare and hash encoded rows directly.
    EXPECT_EQ(a, b) << codec_name(codec);
  }
}

TEST(SparseCodecTest, TighterEpsKeepsMoreEntries) {
  rng::Xoshiro256 rng(109);
  const std::uint32_t k = 256;
  // A geometrically decaying row where the kept prefix length actually
  // responds to the mass tolerance (a hard-concentrated row saturates at
  // its support; a slowly decaying one falls back to dense at any eps).
  std::vector<float> row(k + 1);
  double sum = 0.0;
  double v = 1.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(v);
    sum += v;
    v *= 0.8;
  }
  for (std::uint32_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(row[i] / sum);
  }
  row[k] = 6.0f;
  const auto loose = encode(RowCodec::kSparseTopR, row, 0.10f);
  const auto tight = encode(RowCodec::kSparseTopR, row, 0.005f);
  EXPECT_LT(row_nnz(RowCodec::kSparseTopR, k + 1, loose),
            row_nnz(RowCodec::kSparseTopR, k + 1, tight));
}

TEST(SparseCodecTest, DenseCodecsReportFixedRowBytesAndNnz) {
  rng::Xoshiro256 rng(111);
  const std::uint32_t k = 64;
  const std::vector<float> row = concentrated_row(rng, k, 4, 0.01f, 2.0f);
  for (const RowCodec codec :
       {RowCodec::kFloat32, RowCodec::kFp16, RowCodec::kInt8}) {
    const auto enc = encode(codec, row);
    EXPECT_EQ(row_bytes(codec, k + 1, enc), encoded_bytes(codec, k + 1));
    EXPECT_EQ(row_nnz(codec, k + 1, enc), k);
  }
}

TEST(SparseCodecTest, IndexWidthFollowsCommunityCount) {
  EXPECT_EQ(sparse_index_bytes(256), sizeof(std::uint16_t));
  EXPECT_EQ(sparse_index_bytes(65536), sizeof(std::uint16_t));
  EXPECT_EQ(sparse_index_bytes(65537), sizeof(std::uint32_t));
  // The payload formula prices the index width accordingly.
  EXPECT_EQ(sparse_payload_bytes(RowCodec::kSparseTopR, 10, 1024),
            10 * sizeof(std::uint16_t) + 10 * sizeof(float) + sizeof(float));
  EXPECT_EQ(sparse_payload_bytes(RowCodec::kSparseTopR, 10, 100000),
            10 * sizeof(std::uint32_t) + 10 * sizeof(float) + sizeof(float));
}

}  // namespace
}  // namespace scd::quant
