// Sparse O(nnz) kernels vs the scalar reference on decoded rows.
//
// A sparse row decodes to a shared epsilon on every dropped community,
// so the support/epsilon decomposition the sparse kernels use is
// algebraically exact: the enc kernels must agree with the grads.cpp
// reference evaluated on decode_row's output up to float-level
// reassociation. The tolerance is not double-rounding tight because the
// comparison crosses two deliberate precision choices: the kernels form
// w_k = dt + pi_bk * btd_k from the float-cached btd staging (btd_k
// rounds bt_k - dt once), while the scalar reference recomputes
// pi_bk*bt_k + dt*(1-pi_bk) from bt; and dense-fallback rows route
// through the fused float-lane readers. Both effects are ~1e-8 relative
// — far below the ~1e-2 any decomposition bug would show. The batched
// phi/theta paths are checked against the per-pair reference summed over
// a whole neighbor batch, including the dense-fallback rows the
// epilogues must not double-count.
#include "core/kernels_simd.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/grads.h"
#include "quant/row_codec.h"
#include "random/xoshiro.h"

namespace scd::core {
namespace {

using quant::RowCodec;

constexpr RowCodec kSparseCodecs[] = {RowCodec::kSparseTopR,
                                      RowCodec::kSparseTopRFp16,
                                      RowCodec::kSparseTopRInt8};
constexpr std::uint32_t kSizes[] = {8, 64, 1000, 4096};

// Covers the btd-vs-bt staging round-off and the fallback rows' float
// lanes (see the header comment); quantization error never enters — both
// sides read the same decoded values.
constexpr double kSparseTol = 1e-5;

std::vector<float> concentrated_row(rng::Xoshiro256& rng, std::uint32_t k,
                                    std::uint32_t support, float phi_sum) {
  std::vector<float> row(k + 1, 0.0f);
  double tsum = 0.0;
  std::vector<double> tail(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    tail[i] = rng.next_double() + 0.1;
    tsum += tail[i];
  }
  for (std::uint32_t i = 0; i < k; ++i) {
    row[i] = static_cast<float>(tail[i] / tsum * 0.003);
  }
  std::vector<double> heavy(support);
  double hsum = 0.0;
  for (double& h : heavy) {
    h = 0.5 + rng.next_double();
    hsum += h;
  }
  const std::uint32_t stride = std::max(1u, k / support);
  for (std::uint32_t s = 0; s < support; ++s) {
    row[(s * stride) % k] = static_cast<float>(heavy[s] / hsum * 0.997);
  }
  row[k] = phi_sum;
  return row;
}

std::vector<float> uniform_row(std::uint32_t k, float phi_sum) {
  std::vector<float> row(k + 1, 1.0f / static_cast<float>(k));
  row[k] = phi_sum;
  return row;
}

LikelihoodTerms random_terms(rng::Xoshiro256& rng, std::uint32_t k) {
  std::vector<float> beta(k);
  for (float& b : beta) {
    b = 0.05f + 0.9f * static_cast<float>(rng.next_double());
  }
  LikelihoodTerms terms;
  terms.refresh(beta, 0.01);
  return terms;
}

std::vector<std::byte> encode(RowCodec codec, std::span<const float> row) {
  std::vector<std::byte> enc(quant::encoded_bytes(
      codec, static_cast<std::uint32_t>(row.size())));
  quant::encode_row(codec, row, enc);
  return enc;
}

std::vector<float> decode(RowCodec codec, std::span<const std::byte> enc,
                          std::uint32_t width) {
  std::vector<float> row(width);
  quant::decode_row(codec, enc, row);
  return row;
}

void expect_close(double got, double ref, const char* what,
                  std::uint32_t k) {
  EXPECT_NEAR(got, ref, kSparseTol * (1.0 + std::abs(ref)))
      << what << " K=" << k;
}

TEST(SparseKernelsTest, PairLikelihoodMatchesDecodedRows) {
  rng::Xoshiro256 rng(201);
  for (const RowCodec codec : kSparseCodecs) {
    for (const std::uint32_t k : kSizes) {
      const LikelihoodTerms terms = random_terms(rng, k);
      const std::vector<float> a = concentrated_row(rng, k, 5, 2.0f);
      const std::vector<float> b = concentrated_row(rng, k, 7, 3.0f);
      const auto ea = encode(codec, a);
      const auto eb = encode(codec, b);
      const auto da = decode(codec, ea, k + 1);
      const auto db = decode(codec, eb, k + 1);
      for (const bool y : {false, true}) {
        expect_close(fused_pair_likelihood_enc(codec, ea, eb, k, terms, y),
                     pair_likelihood(da, db, terms, y), "fused Z", k);
        expect_close(pair_likelihood_enc(codec, ea, eb, k, terms, y),
                     pair_likelihood(da, db, terms, y), "scalar Z", k);
      }
    }
  }
}

// Mixed pairs: one side in sparse form, the other stored via the dense
// fallback. The merge-intersect cannot run, so the kernel routes through
// a correct O(K) path — same answer, different cost.
TEST(SparseKernelsTest, PairLikelihoodHandlesDenseFallbackSides) {
  rng::Xoshiro256 rng(203);
  for (const RowCodec codec : kSparseCodecs) {
    const std::uint32_t k = 256;
    const LikelihoodTerms terms = random_terms(rng, k);
    const std::vector<float> sparse = concentrated_row(rng, k, 6, 2.0f);
    const std::vector<float> dense = uniform_row(k, 3.0f);
    const auto es = encode(codec, sparse);
    const auto ed = encode(codec, dense);
    ASSERT_LT(quant::row_nnz(codec, k + 1, es), k);
    ASSERT_EQ(quant::row_nnz(codec, k + 1, ed), k);
    const auto ds = decode(codec, es, k + 1);
    const auto dd = decode(codec, ed, k + 1);
    for (const bool y : {false, true}) {
      expect_close(fused_pair_likelihood_enc(codec, es, ed, k, terms, y),
                   pair_likelihood(ds, dd, terms, y), "sparse|fallback", k);
      expect_close(fused_pair_likelihood_enc(codec, ed, es, k, terms, y),
                   pair_likelihood(dd, ds, terms, y), "fallback|sparse", k);
      expect_close(fused_pair_likelihood_enc(codec, ed, ed, k, terms, y),
                   pair_likelihood(dd, dd, terms, y), "fallback|fallback",
                   k);
    }
  }
}

// The batched phi path: stage once per vertex, scatter O(nnz) per
// neighbor, fold the j-independent accumulator with one epilogue. The
// result must equal the per-pair reference summed over the batch — with
// fallback neighbors interleaved, whose full-gradient writes bypass the
// accumulator.
TEST(SparseKernelsTest, BatchedPhiGradMatchesDecodedReference) {
  rng::Xoshiro256 rng(205);
  for (const RowCodec codec : kSparseCodecs) {
    for (const std::uint32_t k : kSizes) {
      const LikelihoodTerms terms = random_terms(rng, k);
      const std::vector<float> a = concentrated_row(rng, k, 5, 2.5f);
      constexpr std::size_t kNeighbors = 9;
      std::vector<std::vector<std::byte>> enc_rows;
      std::vector<std::vector<float>> dec_rows;
      for (std::size_t n = 0; n < kNeighbors; ++n) {
        // Every third neighbor is a dense-fallback row.
        const std::vector<float> b =
            n % 3 == 2 ? uniform_row(k, 3.0f)
                       : concentrated_row(rng, k, 4 + (n % 5), 3.0f);
        enc_rows.push_back(encode(codec, b));
        dec_rows.push_back(decode(codec, enc_rows.back(), k + 1));
      }
      std::vector<double> g_ref(k, 0.0);
      std::vector<double> g_sparse(k, 0.0);
      const SparsePhiStage stage = sparse_phi_stage(a, terms);
      SparsePhiAccum acc;
      acc.reset();
      for (std::size_t n = 0; n < kNeighbors; ++n) {
        const bool y = n % 2 == 0;
        const double z_ref =
            accumulate_phi_grad(a, dec_rows[n], terms, y, g_ref);
        const double z_sparse = sparse_accumulate_phi_grad_enc(
            codec, a, stage, enc_rows[n], terms, y, g_sparse, acc);
        expect_close(z_sparse, z_ref, "phi Z", k);
      }
      sparse_phi_epilogue(acc, terms, g_sparse);
      for (std::uint32_t j = 0; j < k; ++j) {
        EXPECT_NEAR(g_sparse[j], g_ref[j],
                    kSparseTol * (1.0 + std::abs(g_ref[j])))
            << quant::codec_name(codec) << " K=" << k << " j=" << j;
      }
    }
  }
}

// The batched theta path: support terms scatter per pair, the
// eps_a*eps_b coefficient folds once per stratum. Mixed pairs (either
// side fallback) must take the O(K) path and leave the accumulator
// untouched, so the epilogue stays correct for the sparse-only pairs.
TEST(SparseKernelsTest, BatchedThetaRatioMatchesDecodedReference) {
  rng::Xoshiro256 rng(207);
  for (const RowCodec codec : kSparseCodecs) {
    for (const std::uint32_t k : kSizes) {
      const LikelihoodTerms terms = random_terms(rng, k);
      constexpr std::size_t kPairs = 8;
      std::vector<double> ref_link(k, 0.0), ref_nonlink(k, 0.0);
      std::vector<double> sp_link(k, 0.0), sp_nonlink(k, 0.0);
      double eps_link = 0.0, eps_nonlink = 0.0;
      for (std::size_t p = 0; p < kPairs; ++p) {
        const std::vector<float> a =
            p % 4 == 3 ? uniform_row(k, 2.0f)
                       : concentrated_row(rng, k, 5 + (p % 3), 2.0f);
        const std::vector<float> b = concentrated_row(rng, k, 6, 3.0f);
        const auto ea = encode(codec, a);
        const auto eb = encode(codec, b);
        const auto da = decode(codec, ea, k + 1);
        const auto db = decode(codec, eb, k + 1);
        const bool y = p % 2 == 0;
        const double z_ref = accumulate_theta_ratio(
            da, db, terms, y, y ? std::span<double>(ref_link)
                                : std::span<double>(ref_nonlink));
        const double z_sparse = sparse_accumulate_theta_ratio_enc(
            codec, ea, eb, k, terms, y,
            y ? std::span<double>(sp_link) : std::span<double>(sp_nonlink),
            y ? eps_link : eps_nonlink);
        expect_close(z_sparse, z_ref, "theta Z", k);
      }
      sparse_theta_epilogue(eps_link, eps_nonlink, terms, sp_link,
                            sp_nonlink);
      for (std::uint32_t j = 0; j < k; ++j) {
        EXPECT_NEAR(sp_link[j], ref_link[j],
                    kSparseTol * (1.0 + std::abs(ref_link[j])))
            << quant::codec_name(codec) << " K=" << k << " j=" << j;
        EXPECT_NEAR(sp_nonlink[j], ref_nonlink[j],
                    kSparseTol * (1.0 + std::abs(ref_nonlink[j])))
            << quant::codec_name(codec) << " K=" << k << " j=" << j;
      }
    }
  }
}

// The single-pair enc entry points accept the sparse codecs too (O(K)
// per call — used off the batched hot path) and must agree with the
// decoded-dense reference.
TEST(SparseKernelsTest, SinglePairEntryPointsAcceptSparseCodecs) {
  rng::Xoshiro256 rng(209);
  for (const RowCodec codec : kSparseCodecs) {
    const std::uint32_t k = 512;
    const LikelihoodTerms terms = random_terms(rng, k);
    const std::vector<float> a = concentrated_row(rng, k, 5, 2.0f);
    const std::vector<float> b = concentrated_row(rng, k, 8, 3.0f);
    const auto ea = encode(codec, a);
    const auto eb = encode(codec, b);
    const auto db = decode(codec, eb, k + 1);
    const auto da = decode(codec, ea, k + 1);
    std::vector<float> w(k);
    std::vector<float> f(k);
    for (const bool y : {false, true}) {
      std::vector<double> g_ref(k, 0.1), g_enc(k, 0.1);
      const double zp_ref =
          accumulate_phi_grad(a, db, terms, y, g_ref);
      const double zp_fused = fused_accumulate_phi_grad_enc(
          codec, a, eb, terms, y, g_enc, w);
      expect_close(zp_fused, zp_ref, "fused phi Z", k);
      for (std::uint32_t j = 0; j < k; ++j) {
        EXPECT_NEAR(g_enc[j], g_ref[j],
                    kSparseTol * (1.0 + std::abs(g_ref[j])))
            << "j=" << j;
      }
      std::vector<double> g_scalar(k, 0.1);
      const double zp_scalar =
          accumulate_phi_grad_enc(codec, a, eb, terms, y, g_scalar);
      expect_close(zp_scalar, zp_ref, "scalar phi Z", k);

      std::vector<double> r_ref(k, 0.2), r_fused(k, 0.2), r_scalar(k, 0.2);
      const double zt_ref =
          accumulate_theta_ratio(da, db, terms, y, r_ref);
      const double zt_fused = fused_accumulate_theta_ratio_enc(
          codec, ea, eb, k, terms, y, r_fused, f);
      const double zt_scalar = accumulate_theta_ratio_enc(
          codec, ea, eb, k, terms, y, r_scalar);
      expect_close(zt_fused, zt_ref, "fused theta Z", k);
      expect_close(zt_scalar, zt_ref, "scalar theta Z", k);
      for (std::uint32_t j = 0; j < k; ++j) {
        EXPECT_NEAR(r_fused[j], r_ref[j],
                    kSparseTol * (1.0 + std::abs(r_ref[j])))
            << "j=" << j;
      }
    }
  }
}

}  // namespace
}  // namespace scd::core
