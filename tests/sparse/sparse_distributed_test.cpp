// End-to-end sparse codec behavior: deterministic distributed runs,
// bounded perplexity drift against fp32, and the version-3 checkpoint
// format with its length-prefixed sparse rows and codec provenance.
#include <cmath>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/distributed_sampler.h"
#include "quant/row_codec.h"
#include "sim/cluster.h"
#include "tests/core/test_fixtures.h"
#include "util/error.h"

namespace scd::core {
namespace {

using quant::RowCodec;
using testing::small_planted_fixture;

constexpr RowCodec kSparseCodecs[] = {RowCodec::kSparseTopR,
                                      RowCodec::kSparseTopRFp16,
                                      RowCodec::kSparseTopRInt8};

DistributedResult run_with_codec(RowCodec codec,
                                 std::uint64_t iterations = 60) {
  auto f = small_planted_fixture(907, 150, 4, 80);
  f.options.eval_interval = 20;
  sim::SimCluster::Config cc;
  cc.num_ranks = 5;
  sim::SimCluster cluster(cc);
  DistributedOptions options;
  options.base = f.options;
  options.chunk_vertices = 8;
  options.pi_codec = codec;
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  return dist.run(iterations);
}

TEST(SparseDistributedTest, RunsAreBitDeterministicPerCodec) {
  for (const RowCodec codec : kSparseCodecs) {
    const DistributedResult a = run_with_codec(codec);
    const DistributedResult b = run_with_codec(codec);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
      EXPECT_EQ(a.history[i].perplexity, b.history[i].perplexity)
          << quant::codec_name(codec) << " eval point " << i;
    }
  }
}

// The acceptance gate: the adaptive top-R truncation (and per-vertex
// re-sparsify on write-back) stays within 1% of the fp32 held-out
// perplexity once the fixture converges.
TEST(SparseDistributedTest, SparsePerplexityWithinOnePercentOfFloat) {
  const double fp32 =
      run_with_codec(RowCodec::kFloat32, 300).history.back().perplexity;
  for (const RowCodec codec : kSparseCodecs) {
    const double perp =
        run_with_codec(codec, 300).history.back().perplexity;
    EXPECT_NEAR(perp, fp32, 0.01 * fp32) << quant::codec_name(codec);
  }
}

/// Checkpoint whose pi rows concentrate their mass (the converged shape
/// sparse encodings exist for); `support` heavy communities per vertex.
Checkpoint make_concentrated_checkpoint(std::uint32_t n = 40,
                                        std::uint32_t k = 64,
                                        std::uint32_t support = 4) {
  Checkpoint c;
  c.iteration = 1234;
  c.hyper.num_communities = k;
  c.hyper.alpha = 0.05;
  c.hyper.delta = 1e-4;
  c.pi = PiMatrix(n, k);
  c.pi.init_random(23);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::span<float> row = c.pi.row(v);
    for (std::uint32_t i = 0; i < k; ++i) {
      row[i] = 0.002f / static_cast<float>(k);
    }
    for (std::uint32_t s = 0; s < support; ++s) {
      row[(v + s * (k / support)) % k] =
          0.998f / static_cast<float>(support);
    }
    row[k] = 20.0f + static_cast<float>(v);
  }
  c.global = GlobalState(k);
  c.global.init_random(23, c.hyper);
  return c;
}

TEST(SparseCheckpointTest, Version3RoundTripsAndRecordsProvenance) {
  const Checkpoint c = make_concentrated_checkpoint();
  const std::string fp32_bytes = checkpoint_to_bytes(c);
  for (const RowCodec codec : kSparseCodecs) {
    const std::string bytes = checkpoint_to_bytes(c, codec, 0.01f);
    std::uint32_t version;
    std::memcpy(&version, bytes.data() + 8, sizeof(version));
    EXPECT_EQ(version, 3u) << quant::codec_name(codec);
    // Length-prefixed rows: concentrated pi shrinks the file far below
    // the fp32 format (and below the dense-fallback capacity).
    EXPECT_LT(bytes.size(), fp32_bytes.size() / 2)
        << quant::codec_name(codec);

    const Checkpoint loaded = checkpoint_from_bytes(bytes);
    EXPECT_EQ(loaded.iteration, c.iteration);
    EXPECT_EQ(loaded.pi_codec, codec) << "provenance";
    // Rows decode exactly like the codec's own round trip.
    std::vector<std::byte> enc(
        quant::encoded_bytes(codec, c.pi.row_width()));
    std::vector<float> ref(c.pi.row_width());
    for (std::uint32_t v = 0; v < c.pi.num_vertices(); ++v) {
      quant::encode_row(codec, c.pi.row(v), enc, 0.01f);
      quant::decode_row(codec, enc, ref);
      for (std::uint32_t i = 0; i < c.pi.row_width(); ++i) {
        ASSERT_EQ(loaded.pi.row(v)[i], ref[i])
            << quant::codec_name(codec) << " v=" << v << " i=" << i;
      }
    }
    // Theta stays exact regardless of the pi codec.
    for (std::uint32_t j = 0; j < 64; ++j) {
      EXPECT_EQ(loaded.global.theta(j, 0), c.global.theta(j, 0));
      EXPECT_EQ(loaded.global.theta(j, 1), c.global.theta(j, 1));
    }
  }
}

TEST(SparseCheckpointTest, DenseFallbackRowsSurviveTheV3Format) {
  // Near-uniform rows store dense-fallback payloads; the length-prefixed
  // reader must handle capacity-sized rows too.
  Checkpoint c = make_concentrated_checkpoint(8, 32, 4);
  for (std::uint32_t v = 0; v < 8; ++v) {
    std::span<float> row = c.pi.row(v);
    for (std::uint32_t i = 0; i < 32; ++i) row[i] = 1.0f / 32.0f;
  }
  const std::string bytes =
      checkpoint_to_bytes(c, RowCodec::kSparseTopR, 0.01f);
  const Checkpoint loaded = checkpoint_from_bytes(bytes);
  for (std::uint32_t v = 0; v < 8; ++v) {
    for (std::uint32_t i = 0; i < c.pi.row_width(); ++i) {
      ASSERT_EQ(loaded.pi.row(v)[i], c.pi.row(v)[i]) << "v=" << v;
    }
  }
}

// The codec tag is the uint32 after magic(8) + version(4) +
// iteration(8) + K(4) + four hyper doubles(32) + vertex count(4).
constexpr std::size_t kTagOffset = 60;

TEST(SparseCheckpointTest, Version3RejectsDenseCodecTag) {
  std::string bytes = checkpoint_to_bytes(make_concentrated_checkpoint(),
                                          RowCodec::kSparseTopR, 0.01f);
  const std::uint32_t dense_tag =
      static_cast<std::uint32_t>(RowCodec::kInt8);
  std::memcpy(bytes.data() + kTagOffset, &dense_tag, sizeof(dense_tag));
  EXPECT_THROW(checkpoint_from_bytes(bytes), scd::DataError);
}

TEST(SparseCheckpointTest, Version2RejectsSparseCodecTag) {
  std::string bytes = checkpoint_to_bytes(make_concentrated_checkpoint(),
                                          RowCodec::kInt8);
  const std::uint32_t sparse_tag =
      static_cast<std::uint32_t>(RowCodec::kSparseTopR);
  std::memcpy(bytes.data() + kTagOffset, &sparse_tag, sizeof(sparse_tag));
  EXPECT_THROW(checkpoint_from_bytes(bytes), scd::DataError);
}

TEST(SparseCheckpointTest, Version3RejectsCorruptRowLengths) {
  const std::string good = checkpoint_to_bytes(
      make_concentrated_checkpoint(), RowCodec::kSparseTopR, 0.01f);
  // The first row's uint32 length prefix sits right after the tag.
  constexpr std::size_t kFirstRowLength = kTagOffset + 4;
  {
    std::string bytes = good;
    const std::uint32_t zero = 0;
    std::memcpy(bytes.data() + kFirstRowLength, &zero, sizeof(zero));
    EXPECT_THROW(checkpoint_from_bytes(bytes), scd::DataError);
  }
  {
    std::string bytes = good;
    const std::uint32_t huge = 1u << 30;
    std::memcpy(bytes.data() + kFirstRowLength, &huge, sizeof(huge));
    EXPECT_THROW(checkpoint_from_bytes(bytes), scd::DataError);
  }
  // Truncated file: drop the trailing bytes of the last row.
  {
    const std::string bytes = good.substr(0, good.size() - 5);
    EXPECT_THROW(checkpoint_from_bytes(bytes), scd::DataError);
  }
}

TEST(SparseDistributedTest, ResumedRunContinuesDeterministically) {
  auto f = small_planted_fixture(907, 150, 4, 80);
  f.options.eval_interval = 20;
  Checkpoint cp;
  cp.iteration = 0;
  cp.hyper = f.hyper;
  cp.pi = PiMatrix(150, 4);
  cp.pi.init_random(37);
  cp.global = GlobalState(4);
  cp.global.init_random(37, f.hyper);
  cp.pi_codec = RowCodec::kSparseTopR;

  auto run_resumed = [&] {
    sim::SimCluster::Config cc;
    cc.num_ranks = 5;
    sim::SimCluster cluster(cc);
    DistributedOptions options;
    options.base = f.options;
    options.chunk_vertices = 8;
    options.pi_codec = RowCodec::kSparseTopR;
    options.resume_from = &cp;
    DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                            f.hyper, options);
    return dist.run(40);
  };
  const DistributedResult a = run_resumed();
  const DistributedResult b = run_resumed();
  ASSERT_EQ(a.history.size(), b.history.size());
  ASSERT_FALSE(a.history.empty());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].perplexity, b.history[i].perplexity)
        << "eval point " << i;
  }
}

}  // namespace
}  // namespace scd::core
