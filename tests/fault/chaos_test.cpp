// Chaos integration tests for the fault-tolerant distributed sampler.
//
// The acceptance bar: with an empty plan the FT protocol reproduces the
// legacy trajectory bit-for-bit at near-identical virtual cost; with a
// plan, the faulted trajectory is a deterministic function of
// (plan, seed); and a mid-run worker crash is detected, its shard and
// slices re-homed, and the run still converges.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/distributed_sampler.h"
#include "fault/fault_plan.h"
#include "sim/cluster.h"
#include "tests/core/test_fixtures.h"

namespace scd::core {
namespace {

using testing::small_planted_fixture;

constexpr unsigned kWorkers = 4;
constexpr std::uint64_t kIterations = 60;

sim::SimCluster::Config cluster_config() {
  sim::SimCluster::Config config;
  config.num_ranks = kWorkers + 1;
  return config;
}

DistributedResult run_sampler(const fault::FaultPlan* plan,
                              std::uint64_t rollback_interval,
                              PiMatrix* pi_out = nullptr,
                              std::vector<float>* beta_out = nullptr) {
  auto f = small_planted_fixture(1618, 150, 4, 80);
  f.options.eval_interval = 20;
  sim::SimCluster cluster(cluster_config());
  DistributedOptions options;
  options.base = f.options;
  options.pipeline = false;  // FT does not pipeline deploys; compare flat
  options.chunk_vertices = 8;
  options.fault_plan = plan;
  options.rollback_interval = rollback_interval;
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  DistributedResult result = dist.run(kIterations);
  if (pi_out != nullptr) *pi_out = dist.snapshot_pi();
  if (beta_out != nullptr) {
    beta_out->assign(dist.global().beta_all().begin(),
                     dist.global().beta_all().end());
  }
  return result;
}

void expect_identical(const DistributedResult& a,
                      const DistributedResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iteration, b.history[i].iteration);
    EXPECT_EQ(a.history[i].perplexity, b.history[i].perplexity)
        << "eval point " << i;
    EXPECT_EQ(a.history[i].seconds, b.history[i].seconds)
        << "eval point " << i;
  }
  EXPECT_EQ(a.virtual_seconds, b.virtual_seconds);
  EXPECT_EQ(a.crashed_ranks, b.crashed_ranks);
  EXPECT_EQ(a.redone_iterations, b.redone_iterations);
}

// The FT protocol with an *empty* plan must reproduce the legacy
// collectives path bit-for-bit in numbers, at <= 2% virtual-time
// overhead (the heartbeats replace the collectives, skew for skew).
TEST(ChaosTest, EmptyPlanMatchesLegacyNumbersBitExact) {
  PiMatrix legacy_pi(1, 1);
  std::vector<float> legacy_beta;
  const DistributedResult legacy =
      run_sampler(nullptr, 0, &legacy_pi, &legacy_beta);

  const fault::FaultPlan empty;
  PiMatrix ft_pi(1, 1);
  std::vector<float> ft_beta;
  const DistributedResult ft = run_sampler(&empty, 0, &ft_pi, &ft_beta);

  EXPECT_TRUE(ft.crashed_ranks.empty());
  EXPECT_EQ(ft.redone_iterations, 0u);
  ASSERT_EQ(ft.history.size(), legacy.history.size());
  for (std::size_t i = 0; i < ft.history.size(); ++i) {
    EXPECT_EQ(ft.history[i].iteration, legacy.history[i].iteration);
    EXPECT_EQ(ft.history[i].perplexity, legacy.history[i].perplexity)
        << "eval point " << i;
  }
  ASSERT_EQ(legacy_beta.size(), ft_beta.size());
  for (std::size_t i = 0; i < ft_beta.size(); ++i) {
    EXPECT_EQ(ft_beta[i], legacy_beta[i]) << "beta " << i;
  }
  ASSERT_EQ(ft_pi.num_vertices(), legacy_pi.num_vertices());
  for (std::uint32_t v = 0; v < ft_pi.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < ft_pi.num_communities(); ++k) {
      ASSERT_EQ(ft_pi.pi(v, k), legacy_pi.pi(v, k)) << "v=" << v;
    }
  }
  EXPECT_LE(ft.virtual_seconds, legacy.virtual_seconds * 1.02)
      << "FT no-fault overhead above 2%";
}

// Transient link faults (drops, duplicates, delays) cost virtual time
// via retries and backoff but never change delivered data: the numbers
// stay bit-identical to the clean FT run.
TEST(ChaosTest, LinkFaultsCostTimeNotNumbers) {
  const fault::FaultPlan empty;
  const DistributedResult clean = run_sampler(&empty, 0);

  fault::FaultPlan lossy;
  lossy.seed = 11;
  // Lossy both ways between the master and worker 1, the whole run.
  lossy.links.push_back({0, 1, 0.0, 1e9, 0.3, 0.2, 5e-6});
  lossy.links.push_back({1, 0, 0.0, 1e9, 0.3, 0.2, 5e-6});
  const DistributedResult faulted = run_sampler(&lossy, 0);

  EXPECT_TRUE(faulted.crashed_ranks.empty());
  ASSERT_EQ(faulted.history.size(), clean.history.size());
  for (std::size_t i = 0; i < faulted.history.size(); ++i) {
    EXPECT_EQ(faulted.history[i].perplexity, clean.history[i].perplexity)
        << "eval point " << i;
  }
  EXPECT_GT(faulted.virtual_seconds, clean.virtual_seconds);
}

TEST(ChaosTest, StragglerSlowsTheRunNotTheNumbers) {
  const fault::FaultPlan empty;
  const DistributedResult clean = run_sampler(&empty, 0);

  fault::FaultPlan slow;
  slow.stragglers.push_back({2, 0.0, 1e9, 8.0});
  const DistributedResult faulted = run_sampler(&slow, 0);

  ASSERT_EQ(faulted.history.size(), clean.history.size());
  for (std::size_t i = 0; i < faulted.history.size(); ++i) {
    EXPECT_EQ(faulted.history[i].perplexity, clean.history[i].perplexity);
  }
  // This small fixture is network-dominated, so the slowdown shows up as
  // a modest but strictly positive critical-path increase.
  EXPECT_GT(faulted.virtual_seconds, clean.virtual_seconds);
}

TEST(ChaosTest, DkvShardStallCostsTimeNotNumbers) {
  const fault::FaultPlan empty;
  const DistributedResult clean = run_sampler(&empty, 0);

  fault::FaultPlan stall;
  stall.dkv_stalls.push_back({1, 0.0, 1e9, 1e-5});
  const DistributedResult faulted = run_sampler(&stall, 0);

  ASSERT_EQ(faulted.history.size(), clean.history.size());
  for (std::size_t i = 0; i < faulted.history.size(); ++i) {
    EXPECT_EQ(faulted.history[i].perplexity, clean.history[i].perplexity);
  }
  EXPECT_GT(faulted.virtual_seconds, clean.virtual_seconds);
}

// A worker dies mid-run: the master must detect it via the missing
// heartbeat, re-home its DKV shard and slices onto the survivors, and
// finish the run with held-out perplexity close to the no-fault run's.
TEST(ChaosTest, WorkerCrashIsDetectedAndRecovered) {
  const fault::FaultPlan empty;
  const DistributedResult clean = run_sampler(&empty, 0);
  ASSERT_FALSE(clean.history.empty());

  fault::FaultPlan plan;
  plan.seed = 5;
  plan.heartbeat_timeout_s = clean.virtual_seconds / kIterations;
  plan.crashes.push_back({2, clean.virtual_seconds / 2.0});
  const DistributedResult faulted = run_sampler(&plan, 0);

  ASSERT_EQ(faulted.crashed_ranks, std::vector<unsigned>{2});
  EXPECT_GE(faulted.redone_iterations, 1u);
  EXPECT_EQ(faulted.iterations, kIterations);
  ASSERT_EQ(faulted.history.size(), clean.history.size());
  // Evals before the crash are untouched; the final one (over the
  // survivors' re-sliced held-out set) must still be converged.
  EXPECT_EQ(faulted.history.front().perplexity,
            clean.history.front().perplexity);
  const double final_clean = clean.history.back().perplexity;
  const double final_faulted = faulted.history.back().perplexity;
  EXPECT_NEAR(final_faulted, final_clean, 0.15 * final_clean)
      << "post-recovery perplexity diverged";
}

// Same plan + same seed => bit-identical faulted trajectory, including
// detection times, redone iterations and every perplexity point.
TEST(ChaosTest, FaultedRunsAreDeterministic) {
  const fault::FaultPlan empty;
  const DistributedResult clean = run_sampler(&empty, 0);

  fault::FaultPlan plan;
  plan.seed = 21;
  plan.heartbeat_timeout_s = clean.virtual_seconds / kIterations;
  plan.crashes.push_back({3, clean.virtual_seconds / 3.0});
  plan.links.push_back({0, 2, 0.0, 1e9, 0.25, 0.1, 1e-5});
  plan.stragglers.push_back({1, 0.0, clean.virtual_seconds, 2.0});
  plan.dkv_stalls.push_back({0, 0.0, 1e9, 5e-6});

  PiMatrix pi_a(1, 1);
  PiMatrix pi_b(1, 1);
  const DistributedResult a = run_sampler(&plan, 0, &pi_a);
  const DistributedResult b = run_sampler(&plan, 0, &pi_b);
  expect_identical(a, b);
  ASSERT_EQ(a.crashed_ranks, std::vector<unsigned>{3});
  for (std::uint32_t v = 0; v < pi_a.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < pi_a.num_communities(); ++k) {
      ASSERT_EQ(pi_a.pi(v, k), pi_b.pi(v, k)) << "v=" << v;
    }
  }
}

// With rollback_interval set, a crash restores the last checkpoint
// snapshot instead of patching forward; the run completes, replays the
// rolled-back iterations, and remains deterministic.
TEST(ChaosTest, RollbackRecoveryReplaysFromSnapshot) {
  const fault::FaultPlan empty;
  const DistributedResult clean = run_sampler(&empty, 0);

  fault::FaultPlan plan;
  plan.seed = 8;
  plan.heartbeat_timeout_s = clean.virtual_seconds / kIterations;
  plan.crashes.push_back({2, clean.virtual_seconds / 2.0});

  const DistributedResult a = run_sampler(&plan, /*rollback_interval=*/10);
  const DistributedResult b = run_sampler(&plan, /*rollback_interval=*/10);
  expect_identical(a, b);
  ASSERT_EQ(a.crashed_ranks, std::vector<unsigned>{2});
  // Rolling back to a multiple-of-10 snapshot replays more work than the
  // single interrupted iteration.
  EXPECT_GE(a.redone_iterations, 1u);
  ASSERT_FALSE(a.history.empty());
  const double final_clean = clean.history.back().perplexity;
  EXPECT_NEAR(a.history.back().perplexity, final_clean,
              0.15 * final_clean);
}

}  // namespace
}  // namespace scd::core
