#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "fault/fault_injector.h"
#include "util/error.h"

namespace scd::fault {
namespace {

constexpr char kFullPlan[] = R"({
  "seed": 7,
  "heartbeat_timeout_s": 0.125,
  "retry_backoff_s": 5e-5,
  "crashes":    [{"rank": 2, "time_s": 0.5}],
  "links":      [{"from": 0, "to": 1, "start_s": 0.0, "end_s": 1.0,
                  "drop_prob": 0.1, "dup_prob": 0.05, "delay_s": 1e-3}],
  "stragglers": [{"rank": 1, "start_s": 0.2, "end_s": 0.4,
                  "slowdown": 3.0}],
  "dkv_stalls": [{"shard": 0, "start_s": 0.1, "end_s": 0.3,
                  "stall_s": 2e-3}]
})";

TEST(FaultPlanTest, ParsesFullSchema) {
  const FaultPlan plan = FaultPlan::from_json(kFullPlan);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.heartbeat_timeout_s, 0.125);
  EXPECT_DOUBLE_EQ(plan.retry_backoff_s, 5e-5);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].rank, 2u);
  EXPECT_DOUBLE_EQ(plan.crashes[0].time_s, 0.5);
  ASSERT_EQ(plan.links.size(), 1u);
  EXPECT_EQ(plan.links[0].from, 0u);
  EXPECT_EQ(plan.links[0].to, 1u);
  EXPECT_DOUBLE_EQ(plan.links[0].drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.links[0].dup_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.links[0].delay_s, 1e-3);
  ASSERT_EQ(plan.stragglers.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.stragglers[0].slowdown, 3.0);
  ASSERT_EQ(plan.dkv_stalls.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.dkv_stalls[0].stall_s, 2e-3);
  EXPECT_FALSE(plan.empty());
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FaultPlanTest, EmptyObjectIsEmptyPlanWithDefaults) {
  const FaultPlan plan = FaultPlan::from_json("{}");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed, 0u);
  EXPECT_DOUBLE_EQ(plan.heartbeat_timeout_s, 0.25);
  EXPECT_DOUBLE_EQ(plan.retry_backoff_s, 50e-6);
  EXPECT_NO_THROW(plan.validate(2));
}

TEST(FaultPlanTest, WindowsDefaultToOpenEnded) {
  const FaultPlan plan = FaultPlan::from_json(
      R"({"stragglers": [{"rank": 1, "slowdown": 2.0}]})");
  ASSERT_EQ(plan.stragglers.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.stragglers[0].start_s, 0.0);
  EXPECT_EQ(plan.stragglers[0].end_s,
            std::numeric_limits<double>::infinity());
}

TEST(FaultPlanTest, MalformedJsonThrows) {
  EXPECT_THROW(FaultPlan::from_json(""), DataError);
  EXPECT_THROW(FaultPlan::from_json("{"), DataError);
  EXPECT_THROW(FaultPlan::from_json("{} trailing"), DataError);
  EXPECT_THROW(FaultPlan::from_json(R"({"seed": })"), DataError);
  EXPECT_THROW(FaultPlan::from_json(R"({"crashes": {}})"), DataError);
  EXPECT_THROW(FaultPlan::from_json(R"({"seed": true})"), DataError);
}

TEST(FaultPlanTest, UnknownKeysAreErrorsNotSilentNoOps) {
  EXPECT_THROW(FaultPlan::from_json(R"({"sede": 7})"), DataError);
  EXPECT_THROW(
      FaultPlan::from_json(R"({"crashes": [{"rnk": 2, "time_s": 1.0}]})"),
      DataError);
}

TEST(FaultPlanTest, ValidationRejectsBadPlans) {
  auto plan_with = [](auto&& mutate) {
    FaultPlan plan;
    mutate(plan);
    return plan;
  };
  // Master crash.
  EXPECT_THROW(plan_with([](FaultPlan& p) {
                 p.crashes.push_back({0, 1.0});
               }).validate(4),
               UsageError);
  // Rank out of range.
  EXPECT_THROW(plan_with([](FaultPlan& p) {
                 p.crashes.push_back({4, 1.0});
               }).validate(4),
               UsageError);
  // Certain-loss link can never deliver.
  EXPECT_THROW(plan_with([](FaultPlan& p) {
                 p.links.push_back({0, 1, 0.0, 1.0, 1.0, 0.0, 0.0});
               }).validate(4),
               UsageError);
  // Self-link.
  EXPECT_THROW(plan_with([](FaultPlan& p) {
                 p.links.push_back({1, 1, 0.0, 1.0, 0.1, 0.0, 0.0});
               }).validate(4),
               UsageError);
  // Speed-up is not a straggler.
  EXPECT_THROW(plan_with([](FaultPlan& p) {
                 p.stragglers.push_back({1, 0.0, 1.0, 0.5});
               }).validate(4),
               UsageError);
  // Empty window.
  EXPECT_THROW(plan_with([](FaultPlan& p) {
                 p.stragglers.push_back({1, 1.0, 1.0, 2.0});
               }).validate(4),
               UsageError);
  // Stall on a shard no worker owns.
  EXPECT_THROW(plan_with([](FaultPlan& p) {
                 p.dkv_stalls.push_back({3, 0.0, 1.0, 1e-3});
               }).validate(4),
               UsageError);
  // Heartbeat timeout must be positive.
  EXPECT_THROW(plan_with([](FaultPlan& p) {
                 p.heartbeat_timeout_s = 0.0;
               }).validate(4),
               UsageError);
}

TEST(FaultPlanTest, FromFileRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/scd_fault_plan_test.json";
  {
    std::ofstream out(path);
    out << kFullPlan;
  }
  const FaultPlan plan = FaultPlan::from_file(path);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].rank, 2u);
  std::remove(path.c_str());
  EXPECT_THROW(FaultPlan::from_file(path), DataError);
}

TEST(FaultInjectorTest, ValidatesAgainstClusterSize) {
  FaultPlan plan;
  plan.crashes.push_back({3, 1.0});
  EXPECT_NO_THROW(FaultInjector(plan, 4));
  EXPECT_THROW(FaultInjector(plan, 3), UsageError);
}

TEST(FaultInjectorTest, CrashTimesComeFromThePlan) {
  FaultPlan plan;
  plan.crashes.push_back({2, 0.5});
  plan.crashes.push_back({2, 0.3});  // earliest event wins
  const FaultInjector inj(plan, 4);
  EXPECT_DOUBLE_EQ(inj.crash_time(2), 0.3);
  EXPECT_EQ(inj.crash_time(1), std::numeric_limits<double>::infinity());
  EXPECT_FALSE(inj.crashed(2, 0.29));
  EXPECT_TRUE(inj.crashed(2, 0.3));
  EXPECT_FALSE(inj.crashed(1, 1e9));
}

TEST(FaultInjectorTest, QuietLinksInjectNothing) {
  FaultPlan plan;
  plan.links.push_back({0, 1, 0.0, 1.0, 0.5, 0.5, 1e-3});
  FaultInjector inj(plan, 4);
  for (int i = 0; i < 50; ++i) {
    // Other link, and same link outside its window: clean.
    const sim::SendFaults other = inj.on_send(0, 2, 0.5);
    EXPECT_EQ(other.dropped_attempts, 0u);
    EXPECT_EQ(other.duplicates, 0u);
    EXPECT_DOUBLE_EQ(other.extra_delay_s, 0.0);
    const sim::SendFaults late = inj.on_send(0, 1, 2.0);
    EXPECT_EQ(late.dropped_attempts, 0u);
    EXPECT_DOUBLE_EQ(late.extra_delay_s, 0.0);
  }
}

TEST(FaultInjectorTest, DrawsAreDeterministicPerMessageSequence) {
  FaultPlan plan;
  plan.seed = 99;
  plan.links.push_back({0, 1, 0.0, 1e9, 0.4, 0.3, 2e-3});
  FaultInjector a(plan, 4);
  FaultInjector b(plan, 4);
  unsigned drops = 0;
  unsigned dups = 0;
  for (int i = 0; i < 200; ++i) {
    const sim::SendFaults fa = a.on_send(0, 1, 1.0);
    const sim::SendFaults fb = b.on_send(0, 1, 1.0);
    EXPECT_EQ(fa.dropped_attempts, fb.dropped_attempts);
    EXPECT_EQ(fa.duplicates, fb.duplicates);
    EXPECT_DOUBLE_EQ(fa.extra_delay_s, 2e-3);
    drops += fa.dropped_attempts;
    dups += fa.duplicates;
  }
  // With p_drop = 0.4 and p_dup = 0.3 over 200 sends, both event kinds
  // must actually fire.
  EXPECT_GT(drops, 0u);
  EXPECT_GT(dups, 0u);
}

TEST(FaultInjectorTest, ComputeFactorMultipliesOverlappingWindows) {
  FaultPlan plan;
  plan.stragglers.push_back({1, 0.0, 2.0, 3.0});
  plan.stragglers.push_back({1, 1.0, 3.0, 2.0});
  const FaultInjector inj(plan, 4);
  EXPECT_DOUBLE_EQ(inj.compute_factor(1, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(1, 1.5), 6.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(1, 2.5), 2.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(1, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(2, 1.5), 1.0);
}

TEST(FaultInjectorTest, ShardStallsSumInsideWindows) {
  FaultPlan plan;
  plan.dkv_stalls.push_back({0, 0.0, 2.0, 1e-3});
  plan.dkv_stalls.push_back({0, 1.0, 3.0, 5e-4});
  const FaultInjector inj(plan, 4);
  EXPECT_DOUBLE_EQ(inj.shard_stall_s(0, 0.5), 1e-3);
  EXPECT_DOUBLE_EQ(inj.shard_stall_s(0, 1.5), 1.5e-3);
  EXPECT_DOUBLE_EQ(inj.shard_stall_s(0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(inj.shard_stall_s(1, 1.5), 0.0);
}

}  // namespace
}  // namespace scd::fault
