#include "tune/tuner.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "tune/report.h"

namespace scd::tune {
namespace {

// Two deliberately mis-configured synthetic workloads. The all-zeros
// grid corner (where the tuner starts) is the bad configuration; the
// acceptance criteria below hold the tuner to finding a near-optimal
// one while probing a fraction of the grid.

/// Comms-bound: a large sparse graph with a small minibatch, so the
/// fixed per-iteration collective skew (4 collectives x ~3 ms) dwarfs
/// the per-minibatch compute. The tuner must discover that a bigger M
/// amortizes the synchronization.
TuneWorkload comms_bound_workload() {
  TuneWorkload w;
  w.num_vertices = 1u << 21;
  w.avg_degree = 32.0;
  w.num_communities = 1024;
  w.sat_vertices = 8192.0;
  return w;
}

SearchSpace comms_bound_space(const TuneWorkload& w) {
  SearchSpace s;
  s.dim(Dim::kWorkers) = {2, 4, 8, 16};
  s.dim(Dim::kThreadsPerNode) = {16};
  s.dim(Dim::kPipeline) = {0, 1};
  s.dim(Dim::kMinibatchVertices) = {1024, 8192};
  s.dim(Dim::kDkvCacheRows) = {0, w.num_vertices / 2};
  s.dim(Dim::kAliasDraw) = {0, 1};
  s.dim(Dim::kPiCodec) = {0};  // fp32 only; keeps the grid at 64 points
  s.dim(Dim::kSparsity) = {0};
  s.validate();
  return s;  // grid: 4 * 1 * 2 * 2 * 2 * 2 * 1 * 1 = 64
}

/// Compute-bound: many communities on few, single-threaded workers —
/// the phi kernel owns the critical path. The tuner must discover
/// threads and workers, and leave the comm knobs alone.
TuneWorkload compute_bound_workload() {
  TuneWorkload w;
  w.num_vertices = 1u << 18;
  w.avg_degree = 16.0;
  w.num_communities = 4096;
  w.sat_vertices = 2048.0;
  return w;
}

SearchSpace compute_bound_space(const TuneWorkload& w) {
  SearchSpace s;
  s.dim(Dim::kWorkers) = {2, 4, 8};
  s.dim(Dim::kThreadsPerNode) = {1, 2, 4, 16};
  s.dim(Dim::kPipeline) = {0, 1};
  s.dim(Dim::kMinibatchVertices) = {1024, 4096};
  s.dim(Dim::kDkvCacheRows) = {0, w.num_vertices};
  s.dim(Dim::kAliasDraw) = {0, 1};
  s.dim(Dim::kPiCodec) = {0};  // fp32 only; keeps the grid at 192 points
  s.dim(Dim::kSparsity) = {0};
  s.validate();
  return s;  // grid: 3 * 4 * 2 * 2 * 2 * 2 * 1 * 1 = 192
}

/// Ground truth by brute force: probe every grid point.
double exhaustive_min_objective(const TuneWorkload& workload,
                                const SearchSpace& space) {
  double best = std::numeric_limits<double>::infinity();
  ConfigIndex index{};
  for (;;) {
    best = std::min(best,
                    run_probe(workload, space.materialize(index)).objective);
    // Odometer increment.
    std::size_t d = 0;
    for (; d < kNumDims; ++d) {
      if (++index[d] < space.values[d].size()) break;
      index[d] = 0;
    }
    if (d == kNumDims) return best;
  }
}

void check_acceptance(const TuneWorkload& workload,
                      const SearchSpace& space, const char* label) {
  SCOPED_TRACE(label);
  const TuneResult result = tune(workload, space);

  // The start really is mis-configured: the tuner found something
  // materially better than the all-zeros corner.
  ASSERT_FALSE(result.probes.empty());
  EXPECT_GE(result.probes.front().objective, 1.10 * result.best.objective)
      << "starting config is not mis-configured enough to mean anything";

  // Within 10% of the exhaustive optimum...
  const double optimum = exhaustive_min_objective(workload, space);
  EXPECT_LE(result.best.objective, 1.10 * optimum);

  // ...while probing at most 40% of the grid.
  EXPECT_EQ(result.grid_size, space.grid_size());
  EXPECT_LE(static_cast<double>(result.probes.size()),
            0.40 * static_cast<double>(result.grid_size));

  // Attribution fired and every decision carries its citation.
  EXPECT_FALSE(result.prunes.empty());
  for (const PruneRecord& r : result.prunes) {
    EXPECT_GE(r.round, 1u);
    EXPECT_FALSE(r.decision.rule.empty());
    EXPECT_FALSE(r.decision.cited_share_name.empty());
    EXPECT_FALSE(r.decision.why.empty());
    EXPECT_GT(r.decision.threshold, 0.0);
    EXPECT_GE(r.decision.cited_share, 0.0);
    // The why sentence must actually cite the share: rules quote it as
    // a percentage with one decimal.
    EXPECT_NE(r.decision.why.find('%'), std::string::npos);
  }

  // The why report names every pruned dimension with its share.
  const std::string report = why_report(result);
  for (const PruneRecord& r : result.prunes) {
    EXPECT_NE(report.find(r.decision.rule), std::string::npos)
        << "why report must trace rule " << r.decision.rule;
    EXPECT_NE(report.find(r.decision.cited_share_name), std::string::npos);
  }

  // Bit-stable: a rerun with the same inputs serializes byte-identically.
  const TuneResult rerun = tune(workload, space);
  EXPECT_EQ(tuning_log_json(result), tuning_log_json(rerun));
  EXPECT_EQ(why_report(result), why_report(rerun));
}

TEST(TuneTest, CommsBoundWorkloadMeetsAcceptanceCriteria) {
  check_acceptance(comms_bound_workload(),
                   comms_bound_space(comms_bound_workload()), "comms");
}

TEST(TuneTest, ComputeBoundWorkloadMeetsAcceptanceCriteria) {
  check_acceptance(compute_bound_workload(),
                   compute_bound_space(compute_bound_workload()), "compute");
}

TEST(TuneTest, SearchSpaceMaterializesAndValidates) {
  const SearchSpace s = SearchSpace::default_space(1u << 20);
  EXPECT_EQ(s.grid_size(), 4u * 3 * 2 * 4 * 3 * 2 * 3 * 3);
  ConfigIndex index{};
  const TuneConfig base = s.materialize(index);
  EXPECT_EQ(base.workers, 4u);
  EXPECT_EQ(base.threads_per_node, 4u);
  EXPECT_FALSE(base.pipeline);
  EXPECT_EQ(base.minibatch_vertices, 2048u);
  EXPECT_EQ(base.dkv_cache_rows, 0u);
  EXPECT_FALSE(base.alias_draw);
  EXPECT_EQ(base.pi_codec, quant::RowCodec::kFloat32);
  EXPECT_EQ(base.sparse_eps, 0.0);
  EXPECT_EQ(base.key(),
            "w4 t4 pipe=0 M2048 cache=0 alias=0 codec=fp32 seps=0");

  SearchSpace bad = s;
  bad.dim(Dim::kWorkers).clear();
  EXPECT_THROW(bad.validate(), UsageError);
  SearchSpace bad_bool = s;
  bad_bool.dim(Dim::kPipeline) = {0, 2};
  EXPECT_THROW(bad_bool.validate(), UsageError);
  SearchSpace bad_codec = s;
  bad_codec.dim(Dim::kPiCodec) = {quant::kNumCodecs};
  EXPECT_THROW(bad_codec.validate(), UsageError);
  EXPECT_THROW(s.materialize(ConfigIndex{9, 0, 0, 0, 0, 0, 0}), UsageError);
}

TEST(TuneTest, ProgressCreditSaturates) {
  EXPECT_DOUBLE_EQ(progress(8192.0, 8192.0), 0.5);
  EXPECT_LT(progress(1024.0, 8192.0), progress(16384.0, 8192.0));
  EXPECT_LT(progress(1u << 20, 8192.0), 1.0);
}

TEST(TuneTest, ProbeIsDeterministicAndTiled) {
  const TuneWorkload w = comms_bound_workload();
  TuneConfig c;
  c.workers = 4;
  c.threads_per_node = 16;
  c.pipeline = true;
  c.minibatch_vertices = 4096;
  c.dkv_cache_rows = w.num_vertices / 4;
  c.alias_draw = true;
  const ProbeResult a = run_probe(w, c);
  const ProbeResult b = run_probe(w, c);
  EXPECT_EQ(a.virtual_s, b.virtual_s);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  for (std::size_t s = 0; s < trace::kNumStages; ++s) {
    EXPECT_EQ(a.on_path_s[s], b.on_path_s[s]);
  }
  // Critical-path buckets tile the probe's virtual time.
  double sum = 0.0;
  for (double s : a.on_path_s) sum += s;
  EXPECT_NEAR(sum, a.virtual_s, 1e-9 * a.virtual_s);
  // The modeled cache saw traffic and reported a hit rate.
  EXPECT_GT(a.dkv_hit_rate, 0.0);
  EXPECT_LE(a.dkv_hit_rate, 1.0);
  EXPECT_NE(a.metrics_json.find("dkv_hits"), std::string::npos);
}

// Pruner rules on synthetic attributions: each rule must fire exactly
// on its own signal and cite it.
TEST(TuneTest, PrunerCitesTheShareThatFired) {
  ProbeResult p;
  p.virtual_s = 1.0;
  p.per_iteration_s = 1.0;
  p.config.pipeline = true;
  p.config.dkv_cache_rows = 1024;
  // 70% collective + 20% phi-compute: sync-bound.
  p.on_path_s[static_cast<std::size_t>(trace::Stage::kCollective)] = 0.7;
  p.on_path_s[static_cast<std::size_t>(trace::Stage::kUpdatePhi)] = 0.2;
  p.phi_compute_s = 0.2;
  p.compute_share = 0.2;
  p.comm_share = 0.7;
  p.dkv_hit_rate = 0.99;

  const std::vector<PruneDecision> decisions = prune_directions(p);
  bool saw_sync = false;
  bool saw_cache = false;
  bool saw_alias_up = false;
  bool saw_alias_down = false;
  for (const PruneDecision& d : decisions) {
    if (d.rule == "sync-bound-workers-up") {
      saw_sync = true;
      EXPECT_EQ(d.dim, Dim::kWorkers);
      EXPECT_TRUE(d.upward);
      EXPECT_EQ(d.cited_share_name, "sync_share");
      EXPECT_NEAR(d.cited_share, 0.7, 1e-12);
      EXPECT_NEAR(d.threshold, PruneRules{}.sync_bound, 1e-12);
      EXPECT_NE(d.why.find("70.0%"), std::string::npos);
    }
    if (d.rule == "cache-saturated-cache-up") {
      saw_cache = true;
      EXPECT_EQ(d.cited_share_name, "dkv_hit_rate");
      EXPECT_NEAR(d.cited_share, 0.99, 1e-12);
    }
    if (d.rule == "draw-off-path-alias") {
      (d.upward ? saw_alias_up : saw_alias_down) = true;
      EXPECT_EQ(d.cited_share_name, "draw_share");
    }
  }
  EXPECT_TRUE(saw_sync);
  EXPECT_TRUE(saw_cache);
  EXPECT_TRUE(saw_alias_up);
  EXPECT_TRUE(saw_alias_down);
}

TEST(TuneTest, TuningLogIsValidStructuredJson) {
  // Cheap structural checks (full parsing belongs to check_bench's
  // Python); the log must carry every contract field.
  const TuneWorkload w = compute_bound_workload();
  SearchSpace s = compute_bound_space(w);
  const TuneResult result = tune(w, s);
  const std::string json = tuning_log_json(result);
  for (const char* field :
       {"\"grid_size\"", "\"probes_run\"", "\"probe_fraction\"",
        "\"rounds\"", "\"best\"", "\"probes\"", "\"prunes\"",
        "\"critical_path\"", "\"metrics\"", "\"objective\"",
        "\"virtual_s\"", "\"config\"", "\"why\"", "\"share\"",
        "\"threshold\"", "\"rule\"", "\"direction\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Stage buckets are keyed by stage name.
  EXPECT_NE(json.find("\"update_phi\""), std::string::npos);
  EXPECT_NE(json.find("\"collective\""), std::string::npos);
}

}  // namespace
}  // namespace scd::tune
