#include "util/cli.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd {
namespace {

struct Opts {
  bool verbose = false;
  std::int64_t iters = 100;
  std::uint64_t nodes = 8;
  double rate = 0.5;
  std::string name = "default";
};

ArgParser make_parser(Opts& opts) {
  ArgParser parser("prog", "test program");
  parser.add_flag("verbose", &opts.verbose, "chatty output")
      .add_int("iters", &opts.iters, "iteration count")
      .add_uint("nodes", &opts.nodes, "cluster size")
      .add_double("rate", &opts.rate, "learning rate")
      .add_string("name", &opts.name, "experiment name");
  return parser;
}

TEST(CliTest, DefaultsSurviveEmptyArgv) {
  Opts opts;
  ArgParser parser = make_parser(opts);
  const char* argv[] = {"prog"};
  EXPECT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(opts.iters, 100);
  EXPECT_EQ(opts.name, "default");
}

TEST(CliTest, ParsesSeparateAndEqualsForms) {
  Opts opts;
  ArgParser parser = make_parser(opts);
  const char* argv[] = {"prog",  "--iters", "250",          "--rate=0.125",
                        "--name", "exp1",   "--nodes=64"};
  EXPECT_TRUE(parser.parse(7, argv));
  EXPECT_EQ(opts.iters, 250);
  EXPECT_DOUBLE_EQ(opts.rate, 0.125);
  EXPECT_EQ(opts.name, "exp1");
  EXPECT_EQ(opts.nodes, 64u);
}

TEST(CliTest, FlagsWork) {
  Opts opts;
  ArgParser parser = make_parser(opts);
  const char* argv[] = {"prog", "--verbose"};
  EXPECT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(opts.verbose);
}

TEST(CliTest, FlagAcceptsExplicitFalse) {
  Opts opts;
  opts.verbose = true;
  ArgParser parser = make_parser(opts);
  const char* argv[] = {"prog", "--verbose=false"};
  EXPECT_TRUE(parser.parse(2, argv));
  EXPECT_FALSE(opts.verbose);
}

TEST(CliTest, UnknownOptionThrows) {
  Opts opts;
  ArgParser parser = make_parser(opts);
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(parser.parse(3, argv), UsageError);
}

TEST(CliTest, MalformedNumberThrows) {
  Opts opts;
  ArgParser parser = make_parser(opts);
  const char* argv[] = {"prog", "--iters", "12abc"};
  EXPECT_THROW(parser.parse(3, argv), UsageError);
}

TEST(CliTest, NegativeForUnsignedThrows) {
  Opts opts;
  ArgParser parser = make_parser(opts);
  const char* argv[] = {"prog", "--nodes", "-4"};
  EXPECT_THROW(parser.parse(3, argv), UsageError);
}

TEST(CliTest, MissingValueThrows) {
  Opts opts;
  ArgParser parser = make_parser(opts);
  const char* argv[] = {"prog", "--iters"};
  EXPECT_THROW(parser.parse(2, argv), UsageError);
}

TEST(CliTest, HelpReturnsFalseAndMentionsOptions) {
  Opts opts;
  ArgParser parser = make_parser(opts);
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.usage().find("--iters"), std::string::npos);
  EXPECT_NE(parser.usage().find("learning rate"), std::string::npos);
}

TEST(CliTest, DuplicateRegistrationThrows) {
  Opts opts;
  ArgParser parser("p", "d");
  parser.add_int("x", &opts.iters, "first");
  EXPECT_THROW(parser.add_double("x", &opts.rate, "second"), UsageError);
}

}  // namespace
}  // namespace scd
