#include "util/units.h"

#include <gtest/gtest.h>

namespace scd {
namespace {

TEST(UnitsTest, Bytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3ull << 30), "3.00 GiB");
}

TEST(UnitsTest, Durations) {
  EXPECT_EQ(format_duration(4.2e-9), "4.2 ns");
  EXPECT_EQ(format_duration(1.7e-6), "1.70 us");
  EXPECT_EQ(format_duration(0.365), "365.00 ms");
  EXPECT_EQ(format_duration(42.0), "42.00 s");
  EXPECT_EQ(format_duration(600.0), "10.0 min");
  EXPECT_EQ(format_duration(14400.0), "4.00 h");
}

TEST(UnitsTest, Bandwidth) {
  EXPECT_EQ(format_bandwidth(6.8e9), "6.80 GB/s");
  EXPECT_EQ(format_bandwidth(250.0), "250.00 B/s");
}

TEST(UnitsTest, CountsGetThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1806067135ull), "1,806,067,135");
}

}  // namespace
}  // namespace scd
