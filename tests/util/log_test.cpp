#include "util/log.h"

#include <gtest/gtest.h>

namespace scd {
namespace {

TEST(LogTest, LevelThresholdIsHonored) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_EQ(logger.level(), LogLevel::kWarn);
  // Below-threshold writes are no-ops; these must not crash or deadlock.
  logger.write(LogLevel::kDebug, "suppressed");
  logger.write(LogLevel::kInfo, "suppressed");
  logger.set_level(LogLevel::kOff);
  logger.write(LogLevel::kError, "also suppressed");
  logger.set_level(saved);
}

TEST(LogTest, StreamMacrosCompileAndEmit) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);  // keep test output clean
  SCD_LOG_DEBUG() << "value=" << 42;
  SCD_LOG_INFO() << "pi=" << 3.14;
  SCD_LOG_WARN() << "warn";
  SCD_LOG_ERROR() << "error";
  logger.set_level(saved);
}

TEST(LogTest, SingletonIdentity) {
  EXPECT_EQ(&Logger::instance(), &Logger::instance());
}

// The SCD_LOG_LEVEL environment variable goes through this parser at
// startup (Logger's constructor); the singleton in this process is
// already built, so the parser is what is testable here.
TEST(LogTest, ParseLogLevelRecognizesAllLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST(LogTest, ParseLogLevelIsCaseInsensitive) {
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("OFF"), LogLevel::kOff);
}

TEST(LogTest, ParseLogLevelRejectsUnknownNames) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("2"), std::nullopt);
}

}  // namespace
}  // namespace scd
