#include "util/log.h"

#include <gtest/gtest.h>

namespace scd {
namespace {

TEST(LogTest, LevelThresholdIsHonored) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_EQ(logger.level(), LogLevel::kWarn);
  // Below-threshold writes are no-ops; these must not crash or deadlock.
  logger.write(LogLevel::kDebug, "suppressed");
  logger.write(LogLevel::kInfo, "suppressed");
  logger.set_level(LogLevel::kOff);
  logger.write(LogLevel::kError, "also suppressed");
  logger.set_level(saved);
}

TEST(LogTest, StreamMacrosCompileAndEmit) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);  // keep test output clean
  SCD_LOG_DEBUG() << "value=" << 42;
  SCD_LOG_INFO() << "pi=" << 3.14;
  SCD_LOG_WARN() << "warn";
  SCD_LOG_ERROR() << "error";
  logger.set_level(saved);
}

TEST(LogTest, SingletonIdentity) {
  EXPECT_EQ(&Logger::instance(), &Logger::instance());
}

}  // namespace
}  // namespace scd
