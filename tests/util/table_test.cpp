#include "util/table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd {
namespace {

TEST(TableTest, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{42}});
  t.add_row({std::string("b"), std::int64_t{7}});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 42    |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 7     |"), std::string::npos);
}

TEST(TableTest, CsvRoundsDoublesAtPrecision) {
  Table t({"x"});
  t.set_precision(3);
  t.add_row({3.14159});
  EXPECT_EQ(t.to_csv(), "x\n3.14\n");
}

TEST(TableTest, RowArityIsChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), UsageError);
}

TEST(TableTest, EmptyHeaderRejected) {
  EXPECT_THROW(Table(std::vector<std::string>{}), UsageError);
}

TEST(TableTest, CsvHasHeaderAndRows) {
  Table t({"k", "time_ms"});
  t.add_row({std::int64_t{1024}, 450.0});
  t.add_row({std::int64_t{12288}, 365.5});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "k,time_ms\n1024,450\n12288,365.5\n");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, JsonEmitsRowObjectsWithExactDoubles) {
  Table t({"stage", "k", "ms"});
  t.set_precision(3);  // must not affect JSON: doubles round-trip exactly
  t.add_row({std::string("load_pi"), std::int64_t{1024}, 0.1});
  t.add_row({std::string("update_pi"), std::int64_t{12288}, 365.5});
  EXPECT_EQ(t.to_json(),
            "[\n"
            "    {\"stage\": \"load_pi\", \"k\": 1024, "
            "\"ms\": 0.10000000000000001},\n"
            "    {\"stage\": \"update_pi\", \"k\": 12288, \"ms\": 365.5}\n"
            "  ]");
}

TEST(TableTest, WriteCsvRejectsBadPath) {
  Table t({"a"});
  t.add_row({std::int64_t{1}});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/x.csv"), Error);
}

}  // namespace
}  // namespace scd
