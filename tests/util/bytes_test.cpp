#include "util/bytes.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd {
namespace {

TEST(BytesTest, ScalarRoundTrip) {
  ByteWriter w;
  w.put<std::uint64_t>(42);
  w.put<double>(3.25);
  w.put<std::uint8_t>(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint64_t>(), 42u);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, SpanRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint32_t> values = {1, 2, 3, 5, 8};
  w.put_span(std::span<const std::uint32_t>(values));
  w.put_span(std::span<const float>{});  // empty span
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_vector<std::uint32_t>(), values);
  EXPECT_TRUE(r.get_vector<float>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, UnderrunThrows) {
  ByteWriter w;
  w.put<std::uint32_t>(1);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get<std::uint64_t>(), UsageError);
}

TEST(BytesTest, CorruptLengthThrows) {
  ByteWriter w;
  w.put<std::uint64_t>(1'000'000);  // claims a million elements follow
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_vector<std::uint32_t>(), UsageError);
}

TEST(BytesTest, MixedPayloadLikeDeployShare) {
  ByteWriter w;
  w.put<std::uint64_t>(3);  // iteration
  const std::vector<std::uint32_t> vertices = {10, 20};
  const std::vector<std::uint8_t> flags = {1, 0, 1};
  w.put_span(std::span<const std::uint32_t>(vertices));
  w.put_span(std::span<const std::uint8_t>(flags));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint64_t>(), 3u);
  EXPECT_EQ(r.get_vector<std::uint32_t>(), vertices);
  EXPECT_EQ(r.get_vector<std::uint8_t>(), flags);
}

}  // namespace
}  // namespace scd
