#include "util/error.h"

#include <gtest/gtest.h>

namespace scd {
namespace {

TEST(ErrorTest, RequirePassesOnTrue) {
  EXPECT_NO_THROW(SCD_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(ErrorTest, RequireThrowsUsageErrorWithContext) {
  try {
    SCD_REQUIRE(false, "the message");
    FAIL() << "expected throw";
  } catch (const UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(ErrorTest, AssertThrowsOnViolation) {
  EXPECT_THROW(SCD_ASSERT(false, "broken"), UsageError);
}

TEST(ErrorTest, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw DataError("bad file"), Error);
  EXPECT_THROW(throw UsageError("bad call"), Error);
  EXPECT_THROW(throw Error("generic"), std::runtime_error);
}

}  // namespace
}  // namespace scd
