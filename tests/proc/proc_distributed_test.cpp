// The tentpole acceptance property: the SAME DistributedSampler loops,
// run on forked processes over real sockets, reproduce the simulator's
// model trajectory bit-for-bit at fp32 — perplexity history, beta, and
// every pi entry compared with EXPECT_EQ, clean run and crash-plan FT
// run alike. Virtual and wall clocks differ by construction; numbers
// must not.
#include "core/distributed_sampler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "proc/proc_cluster.h"
#include "sim/cluster.h"
#include "tests/core/test_fixtures.h"

namespace scd::core {
namespace {

using testing::small_planted_fixture;

struct Trajectory {
  DistributedResult result;
  PiMatrix pi{1, 1};
  std::vector<float> beta;
};

/// One sampler run on `cluster`; the fixture is rebuilt from the same
/// seed per call so both backends see identical inputs.
Trajectory run_on(comm::Cluster& cluster, std::uint64_t iterations,
                  const fault::FaultPlan* plan,
                  std::uint64_t rollback_interval) {
  auto f = small_planted_fixture(1618, 120, 4, 60);
  f.options.eval_interval = 10;
  DistributedOptions options;
  options.base = f.options;
  options.pipeline = false;  // FT never pipelines; compare flat vs flat
  options.chunk_vertices = 8;
  options.fault_plan = plan;
  options.rollback_interval = rollback_interval;
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  Trajectory out;
  out.result = dist.run(iterations);
  out.pi = dist.snapshot_pi();
  out.beta.assign(dist.global().beta_all().begin(),
                  dist.global().beta_all().end());
  return out;
}

void expect_bit_identical(const Trajectory& sim, const Trajectory& proc) {
  ASSERT_EQ(sim.result.history.size(), proc.result.history.size());
  for (std::size_t i = 0; i < sim.result.history.size(); ++i) {
    EXPECT_EQ(sim.result.history[i].iteration,
              proc.result.history[i].iteration);
    EXPECT_EQ(sim.result.history[i].perplexity,
              proc.result.history[i].perplexity)
        << "eval point " << i;
  }
  ASSERT_EQ(sim.beta.size(), proc.beta.size());
  for (std::size_t k = 0; k < sim.beta.size(); ++k) {
    EXPECT_EQ(sim.beta[k], proc.beta[k]) << "beta " << k;
  }
  ASSERT_EQ(sim.pi.num_vertices(), proc.pi.num_vertices());
  ASSERT_EQ(sim.pi.num_communities(), proc.pi.num_communities());
  for (std::uint32_t v = 0; v < sim.pi.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < sim.pi.num_communities(); ++k) {
      ASSERT_EQ(sim.pi.pi(v, k), proc.pi.pi(v, k))
          << "v=" << v << " k=" << k;
    }
  }
}

TEST(ProcDistributedTest, MatchesSimulatorTrajectoryBitExact) {
  constexpr unsigned kWorkers = 2;
  constexpr std::uint64_t kIterations = 30;

  sim::SimCluster::Config sim_config;
  sim_config.num_ranks = kWorkers + 1;
  sim::SimCluster sim_cluster(sim_config);
  const Trajectory sim = run_on(sim_cluster, kIterations, nullptr, 0);

  proc::ProcCluster::Config proc_config;
  proc_config.num_ranks = kWorkers + 1;
  proc_config.recv_timeout_s = 60.0;
  proc::ProcCluster proc_cluster(proc_config);
  const Trajectory proc = run_on(proc_cluster, kIterations, nullptr, 0);

  expect_bit_identical(sim, proc);
  EXPECT_GT(proc.result.virtual_seconds, 0.0);  // wall time on proc
  // The measured breakdown covers the phases the modeled one covers.
  EXPECT_GT(proc_cluster.max_stats().get(comm::Phase::kUpdatePhi), 0.0);
  EXPECT_GT(proc_cluster.max_stats().get(comm::Phase::kLoadPi), 0.0);
}

TEST(ProcDistributedTest, CrashPlanMatchesSimulatorRecoveryBitExact) {
  // One worker fail-stops at a protocol point of a fixed iteration (the
  // cross-backend crash anchor); both backends must detect it at the
  // same seam, re-home the same shard, roll back to the same snapshot,
  // and land on identical numbers.
  constexpr unsigned kWorkers = 3;
  constexpr std::uint64_t kIterations = 15;

  fault::FaultPlan plan;
  plan.seed = 5;
  plan.crashes.push_back({.rank = 2,
                          .at_iteration = 6,
                          .at_point = fault::CrashPoint::kAfterPhi});

  sim::SimCluster::Config sim_config;
  sim_config.num_ranks = kWorkers + 1;
  sim::SimCluster sim_cluster(sim_config);
  const Trajectory sim =
      run_on(sim_cluster, kIterations, &plan, /*rollback_interval=*/3);

  proc::ProcCluster::Config proc_config;
  proc_config.num_ranks = kWorkers + 1;
  proc_config.recv_timeout_s = 60.0;
  proc::ProcCluster proc_cluster(proc_config);
  const Trajectory proc =
      run_on(proc_cluster, kIterations, &plan, /*rollback_interval=*/3);

  EXPECT_EQ(sim.result.crashed_ranks, std::vector<unsigned>{2});
  EXPECT_EQ(proc.result.crashed_ranks, sim.result.crashed_ranks);
  EXPECT_EQ(proc.result.redone_iterations, sim.result.redone_iterations);
  EXPECT_GE(sim.result.redone_iterations, 1u);
  EXPECT_EQ(proc.result.iterations, sim.result.iterations);
  expect_bit_identical(sim, proc);
}

TEST(ProcDistributedTest, WallBackendRejectsSimOnlyFeatures) {
  auto f = small_planted_fixture(3, 80, 3, 40);

  // Virtual-time-priced faults cannot replay on a wall clock.
  {
    proc::ProcCluster::Config config;
    config.num_ranks = 3;
    proc::ProcCluster cluster(config);
    fault::FaultPlan plan;
    plan.stragglers.push_back({1, 0.0, 1e9, 2.0});
    DistributedOptions options;
    options.base = f.options;
    options.fault_plan = &plan;
    DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                            f.hyper, options);
    EXPECT_THROW(dist.run(2), scd::UsageError);
  }
  // Crash plans without rollback would keep the dead worker's partial
  // pi writes: the restart does not replay them, so it is refused.
  {
    proc::ProcCluster::Config config;
    config.num_ranks = 3;
    proc::ProcCluster cluster(config);
    fault::FaultPlan plan;
    plan.crashes.push_back(
        {.rank = 1, .at_iteration = 1, .at_point = fault::CrashPoint::kAfterPi});
    DistributedOptions options;
    options.base = f.options;
    options.fault_plan = &plan;
    options.rollback_interval = 0;
    DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                            f.hyper, options);
    EXPECT_THROW(dist.run(2), scd::UsageError);
  }
  // Virtual-time-anchored crashes have no wall-clock meaning either.
  {
    proc::ProcCluster::Config config;
    config.num_ranks = 3;
    proc::ProcCluster cluster(config);
    fault::FaultPlan plan;
    plan.crashes.push_back({.rank = 1, .time_s = 0.5});
    DistributedOptions options;
    options.base = f.options;
    options.fault_plan = &plan;
    options.rollback_interval = 2;
    DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                            f.hyper, options);
    EXPECT_THROW(dist.run(2), scd::UsageError);
  }
}

}  // namespace
}  // namespace scd::core
