// Process-lifecycle discipline of ProcCluster: every exit path — clean,
// SIGKILLed worker, failing master, failing worker — reaps every child.
// The audits call waitpid(-1) in the parent after run() returns or
// throws: ECHILD means no zombies and no orphans left behind.
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <stdexcept>

#include <sys/wait.h>

#include "proc/proc_cluster.h"

namespace scd::proc {
namespace {

ProcCluster::Config cluster_config(unsigned ranks) {
  ProcCluster::Config config;
  config.num_ranks = ranks;
  config.recv_timeout_s = 30.0;
  return config;
}

void expect_no_children() {
  errno = 0;
  const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_EQ(r, -1) << "an unreaped child process survived the run";
  EXPECT_EQ(errno, ECHILD);
}

TEST(ProcLifecycleTest, CleanRunReapsEveryWorker) {
  ProcCluster cluster(cluster_config(4));
  cluster.run([](comm::Context& ctx) {
    ctx.transport().barrier(ctx.rank());
  });
  expect_no_children();
}

TEST(ProcLifecycleTest, SigkilledWorkerIsDetectedAndReaped) {
  // Harder than fail-stop: the worker is killed by the kernel with no
  // chance to report. The master must still detect the death through
  // the transport (EOF after drain), run() must surface it as a data
  // error, and no zombie may remain.
  ProcCluster cluster(cluster_config(2));
  EXPECT_THROW(
      cluster.run([&cluster](comm::Context& ctx) {
        comm::Transport& net = ctx.transport();
        if (ctx.rank() == 1) {
          const double alive[] = {1.0};
          net.send<double>(1, 0, 3, alive);
          // Block on a frame the master never sends; SIGKILL lands here.
          net.recv_raw(1, 0, 4);
          throw std::runtime_error("worker survived its own SIGKILL");
        }
        auto heartbeat = net.recv_bytes_or_dead(0, 1, 3);
        EXPECT_TRUE(heartbeat.has_value());  // worker is up and blocked
        ::kill(cluster.worker_pid(1), SIGKILL);
        auto after = net.recv_bytes_or_dead(0, 1, 3);
        EXPECT_FALSE(after.has_value()) << "death went undetected";
        EXPECT_TRUE(net.rank_dead(1));
      }),
      scd::DataError);
  expect_no_children();
}

TEST(ProcLifecycleTest, FailingMasterAbortsWorkersAndReaps) {
  ProcCluster cluster(cluster_config(3));
  EXPECT_THROW(cluster.run([](comm::Context& ctx) {
                 if (ctx.rank() == 0) {
                   throw std::runtime_error("scripted master failure");
                 }
                 // Workers sit in a blocking receive; the master's
                 // death must unblock them via EOF, not a timeout.
                 try {
                   ctx.transport().recv_raw(ctx.rank(), 0, 9);
                 } catch (const comm::TransportError&) {
                 }
               }),
               scd::Error);
  expect_no_children();
}

TEST(ProcLifecycleTest, FailingWorkerIsReportedAndReaped) {
  ProcCluster cluster(cluster_config(3));
  try {
    cluster.run([](comm::Context& ctx) {
      ctx.transport().barrier(ctx.rank());
      if (ctx.rank() == 2) {
        throw std::runtime_error("scripted worker failure");
      }
    });
    FAIL() << "a failing worker must surface from run()";
  } catch (const scd::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos)
        << "error does not name the failing rank: " << e.what();
    EXPECT_NE(std::string(e.what()).find("scripted worker failure"),
              std::string::npos);
  }
  expect_no_children();
}

}  // namespace
}  // namespace scd::proc
