// ProcTransport over real forked processes: tag matching, FIFO, the
// rank-ordered reduce fold, broadcast, barriers, and dead-rank drain
// semantics. The master rank runs in the parent process, so gtest
// assertions placed there report normally; worker-side checks throw,
// which ProcCluster::run surfaces as an exception.
#include "proc/proc_transport.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "proc/proc_cluster.h"

namespace scd::proc {
namespace {

ProcCluster::Config cluster_config(unsigned ranks) {
  ProcCluster::Config config;
  config.num_ranks = ranks;
  config.recv_timeout_s = 30.0;
  return config;
}

void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

TEST(ProcTransportTest, TagMatchingDeliversAcrossArrivalOrder) {
  ProcCluster cluster(cluster_config(2));
  cluster.run([](comm::Context& ctx) {
    comm::Transport& net = ctx.transport();
    if (ctx.rank() == 1) {
      const double a[] = {1.0, 2.0};
      const double b[] = {3.0};
      const double c[] = {4.0, 5.0, 6.0};
      net.send<double>(1, 0, /*tag=*/7, a);
      net.send<double>(1, 0, /*tag=*/7, b);
      net.send<double>(1, 0, /*tag=*/9, c);
      return;
    }
    // Ask for the LAST-sent tag first: the two tag-7 frames must be
    // parked, then delivered in send order.
    const std::vector<double> c = net.recv<double>(0, 1, 9);
    EXPECT_EQ(c, (std::vector<double>{4.0, 5.0, 6.0}));
    const std::vector<double> a = net.recv<double>(0, 1, 7);
    EXPECT_EQ(a, (std::vector<double>{1.0, 2.0}));
    const std::vector<double> b = net.recv<double>(0, 1, 7);
    EXPECT_EQ(b, (std::vector<double>{3.0}));
  });
}

TEST(ProcTransportTest, ReduceSumFoldsInRankOrderAtRoot) {
  constexpr unsigned kRanks = 4;
  constexpr std::size_t kLen = 5;
  ProcCluster cluster(cluster_config(kRanks));
  cluster.run([](comm::Context& ctx) {
    comm::Transport& net = ctx.transport();
    std::vector<double> inout(kLen);
    for (std::size_t i = 0; i < kLen; ++i) {
      inout[i] = 0.1 * static_cast<double>(ctx.rank()) +
                 static_cast<double>(i);
    }
    const std::vector<double> mine = inout;
    net.reduce_sum(ctx.rank(), 0, inout);
    if (ctx.rank() == 0) {
      // The contract pins the fold: zeroed accumulator, contributions
      // added in ascending rank order — bitwise, not just approximately.
      for (std::size_t i = 0; i < kLen; ++i) {
        double expect = 0.0;
        for (unsigned r = 0; r < kRanks; ++r) {
          expect += 0.1 * static_cast<double>(r) + static_cast<double>(i);
        }
        EXPECT_EQ(inout[i], expect) << "element " << i;
      }
    } else {
      // Non-roots leave inout untouched.
      require(inout == mine, "reduce clobbered a non-root contribution");
    }
  });
}

TEST(ProcTransportTest, WorkerChannelCollectivesUseTheLastRanks) {
  // participants = 2 on a 3-rank cluster: ranks {1, 2}, root 1. The
  // master never enters the channel; workers report the result to it.
  ProcCluster cluster(cluster_config(3));
  cluster.run([](comm::Context& ctx) {
    comm::Transport& net = ctx.transport();
    if (ctx.rank() == 0) {
      const std::vector<double> sum = net.recv<double>(0, 1, 42);
      EXPECT_EQ(sum, (std::vector<double>{30.0}));
      return;
    }
    std::vector<double> inout = {10.0 * static_cast<double>(ctx.rank())};
    net.reduce_sum(ctx.rank(), /*root=*/1, inout, /*channel=*/1,
                   /*participants=*/2);
    net.barrier(ctx.rank(), /*channel=*/1, /*participants=*/2);
    if (ctx.rank() == 1) {
      net.send<double>(1, 0, 42, std::span<const double>(inout));
    } else {
      require(inout == std::vector<double>{20.0},
              "reduce clobbered a non-root contribution");
    }
  });
}

TEST(ProcTransportTest, BroadcastShipsRootBytesToEveryRank) {
  ProcCluster cluster(cluster_config(3));
  cluster.run([](comm::Context& ctx) {
    comm::Transport& net = ctx.transport();
    std::vector<float> data(4, 0.0f);
    if (ctx.rank() == 0) {
      data = {1.5f, -2.0f, 3.25f, 0.0f};
    }
    net.broadcast<float>(ctx.rank(), 0, std::span<float>(data));
    if (ctx.rank() != 0) {
      require(data == std::vector<float>({1.5f, -2.0f, 3.25f, 0.0f}),
              "broadcast payload mismatch on rank " +
                  std::to_string(ctx.rank()));
      net.send<float>(ctx.rank(), 0, 5, std::span<const float>(data));
    } else {
      for (unsigned r = 1; r < 3; ++r) {
        const std::vector<float> echo = net.recv<float>(0, r, 5);
        EXPECT_EQ(echo, data) << "echo from rank " << r;
      }
    }
  });
}

TEST(ProcTransportTest, BarriersSeparateSendEpochs) {
  // Each round: workers send their round number, everyone barriers.
  // Receiving the right value every round on a real transport exercises
  // repeated tree collectives interleaved with p2p traffic.
  ProcCluster cluster(cluster_config(4));
  cluster.run([](comm::Context& ctx) {
    comm::Transport& net = ctx.transport();
    for (std::uint64_t round = 0; round < 8; ++round) {
      if (ctx.rank() != 0) {
        const std::uint64_t payload[] = {round * 10 + ctx.rank()};
        net.send<std::uint64_t>(ctx.rank(), 0, 3, payload);
      } else {
        for (unsigned r = 1; r < 4; ++r) {
          const std::vector<std::uint64_t> got =
              net.recv<std::uint64_t>(0, r, 3);
          EXPECT_EQ(got, (std::vector<std::uint64_t>{round * 10 + r}));
        }
      }
      net.barrier(ctx.rank());
    }
  });
}

TEST(ProcTransportTest, DeadRankDrainsThenReportsDead) {
  // A rank that announces its death stays drainable: everything it sent
  // first must still arrive, and only then does recv_bytes_or_dead
  // report the death — the FT master's detection primitive.
  ProcCluster cluster(cluster_config(2));
  cluster.run([](comm::Context& ctx) {
    comm::Transport& net = ctx.transport();
    if (ctx.rank() == 1) {
      const double x[] = {1.0};
      const double y[] = {2.0};
      net.send<double>(1, 0, 11, x);
      net.send<double>(1, 0, 11, y);
      net.mark_rank_dead(1);
      return;
    }
    auto first = net.recv_bytes_or_dead(0, 1, 11);
    ASSERT_TRUE(first.has_value());
    auto second = net.recv_bytes_or_dead(0, 1, 11);
    ASSERT_TRUE(second.has_value());
    auto third = net.recv_bytes_or_dead(0, 1, 11);
    EXPECT_FALSE(third.has_value());
    EXPECT_THROW(net.recv_raw(0, 1, 11), comm::TransportError);
  });
}

TEST(ProcTransportTest, WorkerFailureSurfacesAsClusterError) {
  ProcCluster cluster(cluster_config(3));
  EXPECT_THROW(cluster.run([](comm::Context& ctx) {
                 if (ctx.rank() == 2) {
                   throw std::runtime_error("scripted worker failure");
                 }
                 if (ctx.rank() == 0) {
                   // The failed rank's sockets close; this blocking recv
                   // must surface the death instead of hanging.
                   EXPECT_THROW(ctx.transport().recv_raw(0, 2, 1),
                                comm::TransportError);
                 }
               }),
               scd::Error);
}

TEST(ProcClusterTest, RunsExactlyOnce) {
  ProcCluster cluster(cluster_config(2));
  cluster.run([](comm::Context&) {});
  EXPECT_THROW(cluster.run([](comm::Context&) {}), scd::UsageError);
}

TEST(ProcClusterTest, CollectsPerRankWallStats) {
  ProcCluster cluster(cluster_config(3));
  cluster.run([](comm::Context& ctx) {
    ctx.book(comm::Phase::kUpdatePhi, 0.25 * (ctx.rank() + 1));
    ctx.timed_barrier();
  });
  EXPECT_DOUBLE_EQ(cluster.stats(1).get(comm::Phase::kUpdatePhi), 0.5);
  EXPECT_DOUBLE_EQ(cluster.stats(2).get(comm::Phase::kUpdatePhi), 0.75);
  EXPECT_DOUBLE_EQ(cluster.max_stats().get(comm::Phase::kUpdatePhi), 0.75);
  EXPECT_GT(cluster.max_clock(), 0.0);
}

}  // namespace
}  // namespace scd::proc
