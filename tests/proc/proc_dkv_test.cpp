// ProcDkv over real forked processes: cross-shard batched get/put with
// the barrier-separated stage discipline, encoded rows on the socket,
// rehoming through live servers, and the end-of-run local pull. Worker
// rank s + 1 serves shard s; assertions outside rank 0 throw instead of
// using gtest (only the parent's failures reach the test binary).
#include "proc/proc_dkv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "proc/proc_cluster.h"
#include "quant/row_codec.h"

namespace scd::proc {
namespace {

constexpr std::uint64_t kRows = 8;
constexpr std::uint32_t kWidth = 4;

ProcCluster::Config cluster_config(unsigned ranks) {
  ProcCluster::Config config;
  config.num_ranks = ranks;
  config.recv_timeout_s = 30.0;
  return config;
}

void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

std::vector<float> initial_row(std::uint64_t key) {
  std::vector<float> row(kWidth);
  for (std::uint32_t j = 0; j < kWidth; ++j) {
    row[j] = static_cast<float>(key) + 0.25f * static_cast<float>(j);
  }
  return row;
}

std::vector<float> updated_row(std::uint64_t key) {
  std::vector<float> row(kWidth);
  for (std::uint32_t j = 0; j < kWidth; ++j) {
    row[j] = 100.0f + static_cast<float>(key * kWidth + j);
  }
  return row;
}

TEST(ProcDkvTest, CrossShardBatchesRoundTripAtFp32) {
  // 3 ranks -> 2 shards over 8 rows: shard 0 owns rows [0, 4) on rank 1,
  // shard 1 owns rows [4, 8) on rank 2.
  ProcCluster cluster(cluster_config(3));
  auto store = cluster.make_store(
      {.num_rows = kRows, .row_width = kWidth, .phantom = false});
  for (std::uint64_t key = 0; key < kRows; ++key) {
    store->init_row(key, initial_row(key));
  }

  cluster.run([&](comm::Context& ctx) {
    comm::Transport& net = ctx.transport();
    if (ctx.rank() == 1) {
      // One batch mixing a local row (0) with remote ones (4, 6): the
      // router must split it per owner and coalesce the remote pair.
      const std::vector<std::uint64_t> keys = {0, 4, 6};
      std::vector<float> values;
      for (const std::uint64_t key : keys) {
        const std::vector<float> row = updated_row(key);
        values.insert(values.end(), row.begin(), row.end());
      }
      store->put_rows(/*requester_shard=*/0, keys, values);
    }
    net.barrier(ctx.rank());
    if (ctx.rank() == 2) {
      // Shard 1 reads the remote write into its own rows plus rank 1's
      // local write, again in one mixed batch.
      const std::vector<std::uint64_t> keys = {4, 6, 0, 5};
      std::vector<float> out(keys.size() * kWidth);
      store->get_rows(/*requester_shard=*/1, keys, out);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        const std::vector<float> expect =
            keys[i] == 5 ? initial_row(5) : updated_row(keys[i]);
        for (std::uint32_t j = 0; j < kWidth; ++j) {
          require(out[i * kWidth + j] == expect[j],
                  "row " + std::to_string(keys[i]) + " mismatch on rank 2");
        }
      }
    }
    if (ctx.rank() == 0) {
      // Master mid-run reads fetch single rows through the servers.
      std::vector<float> row(kWidth);
      store->read_row(6, row);
      EXPECT_EQ(row, updated_row(6));
    }
    net.barrier(ctx.rank());
  });

  // After the run the image was pulled local: row() serves the final
  // bytes without sockets, bit-exact at fp32.
  for (std::uint64_t key = 0; key < kRows; ++key) {
    const bool written = key == 0 || key == 4 || key == 6;
    const std::vector<float> expect =
        written ? updated_row(key) : initial_row(key);
    const std::span<const float> got = store->row(key);
    ASSERT_EQ(got.size(), kWidth);
    for (std::uint32_t j = 0; j < kWidth; ++j) {
      EXPECT_EQ(got[j], expect[j]) << "row " << key << " entry " << j;
    }
  }
}

TEST(ProcDkvTest, LossyCodecMatchesLocalEncodeDecodeReference) {
  // Rows travel encoded; what a reader sees must equal the local
  // encode->decode roundtrip of the written values, nothing lossier.
  ProcCluster cluster(cluster_config(3));
  auto store = cluster.make_store({.num_rows = kRows,
                                   .row_width = kWidth,
                                   .phantom = false,
                                   .codec = quant::RowCodec::kInt8});
  for (std::uint64_t key = 0; key < kRows; ++key) {
    store->init_row(key, initial_row(key));
  }

  auto reference = [](const std::vector<float>& row) {
    std::vector<std::byte> encoded(
        quant::encoded_bytes(quant::RowCodec::kInt8, kWidth));
    quant::encode_row(quant::RowCodec::kInt8, row, encoded);
    std::vector<float> decoded(kWidth);
    quant::decode_row(quant::RowCodec::kInt8, encoded, decoded);
    return decoded;
  };

  cluster.run([&](comm::Context& ctx) {
    comm::Transport& net = ctx.transport();
    if (ctx.rank() == 1) {
      store->put_rows(0, std::vector<std::uint64_t>{5}, updated_row(5));
    }
    net.barrier(ctx.rank());
    if (ctx.rank() == 2) {
      std::vector<float> out(kWidth);
      store->get_rows(1, std::vector<std::uint64_t>{5}, out);
      const std::vector<float> expect = reference(updated_row(5));
      require(out == expect, "int8 row differs from the local roundtrip");
    }
    net.barrier(ctx.rank());
  });

  std::vector<float> row(kWidth);
  store->read_row(5, row);
  EXPECT_EQ(row, reference(updated_row(5)));
  store->read_row(2, row);
  EXPECT_EQ(row, reference(initial_row(2)));
}

TEST(ProcDkvTest, RehomeRoutesReadsAndWritesToTheHeir) {
  // The FT re-homing step: the master re-points shard 0 onto shard 1 on
  // every live server, restores a row through the new owner (the
  // attached init_row path the rollback restore uses), and every rank's
  // subsequent traffic for shard-0 rows lands on the heir.
  ProcCluster cluster(cluster_config(3));
  auto store = cluster.make_store(
      {.num_rows = kRows, .row_width = kWidth, .phantom = false});
  for (std::uint64_t key = 0; key < kRows; ++key) {
    store->init_row(key, initial_row(key));
  }

  cluster.run([&](comm::Context& ctx) {
    comm::Transport& net = ctx.transport();
    if (ctx.rank() == 0) {
      store->rehome_shard(/*shard=*/0, /*new_owner=*/1);
      EXPECT_EQ(store->effective_owner(1), 1u);
      store->init_row(1, updated_row(1));  // routed write to the heir
    }
    net.barrier(ctx.rank());
    if (ctx.rank() != 0) {
      require(store->effective_owner(1) == 1,
              "REHOME did not reach rank " + std::to_string(ctx.rank()));
      std::vector<float> out(kWidth);
      store->get_rows(ctx.rank() - 1, std::vector<std::uint64_t>{1}, out);
      require(out == updated_row(1),
              "rank " + std::to_string(ctx.rank()) +
                  " read a stale copy after rehome");
    }
    net.barrier(ctx.rank());
  });

  // pull_all_rows followed the remap too.
  const std::span<const float> got = store->row(1);
  EXPECT_EQ(std::vector<float>(got.begin(), got.end()), updated_row(1));
}

TEST(ProcDkvTest, CostQueriesAreZeroOnTheWallClockBackend) {
  ProcCluster cluster(cluster_config(2));
  auto store = cluster.make_store(
      {.num_rows = kRows, .row_width = kWidth, .phantom = false});
  for (std::uint64_t key = 0; key < kRows; ++key) {
    store->init_row(key, initial_row(key));
  }
  EXPECT_EQ(store->read_cost(0, 4, kWidth * sizeof(float)), 0.0);
  EXPECT_EQ(store->write_cost(0, 4, kWidth * sizeof(float)), 0.0);
  EXPECT_EQ(store->rehome_cost(0), 0.0);
  cluster.run([&](comm::Context& ctx) {
    const std::vector<std::uint64_t> keys = {0, 3};
    std::vector<float> out(keys.size() * kWidth);
    const double modeled =
        store->get_rows(ctx.rank() == 0 ? 0 : ctx.rank() - 1, keys, out);
    if (modeled != 0.0) {
      throw std::runtime_error("proc get_rows returned a modeled time");
    }
  });
}

TEST(ProcDkvTest, PhantomStoresAreRejected) {
  ProcCluster cluster(cluster_config(2));
  EXPECT_THROW(cluster.make_store({.num_rows = kRows,
                                   .row_width = kWidth,
                                   .phantom = true}),
               scd::UsageError);
}

}  // namespace
}  // namespace scd::proc
