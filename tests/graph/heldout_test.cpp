#include "graph/heldout.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "util/error.h"

namespace scd::graph {
namespace {

GeneratedGraph make_graph(std::uint64_t seed = 17) {
  rng::Xoshiro256 rng(seed);
  PlantedConfig config;
  config.num_vertices = 400;
  config.num_communities = 8;
  return generate_planted(rng, config);
}

TEST(HeldOutTest, BalancedLinksAndNonLinks) {
  const GeneratedGraph g = make_graph();
  rng::Xoshiro256 rng(1);
  const HeldOutSplit split(rng, g.graph, 200);
  std::size_t links = 0;
  for (const HeldOutPair& p : split.pairs()) {
    if (p.link) ++links;
  }
  EXPECT_EQ(split.pairs().size(), 200u);
  EXPECT_EQ(links, 100u);
}

TEST(HeldOutTest, HeldOutLinksRemovedFromTraining) {
  const GeneratedGraph g = make_graph();
  rng::Xoshiro256 rng(2);
  const HeldOutSplit split(rng, g.graph, 100);
  EXPECT_EQ(split.training().num_edges(), g.graph.num_edges() - 50);
  for (const HeldOutPair& p : split.pairs()) {
    if (p.link) {
      EXPECT_TRUE(g.graph.has_edge(p.a, p.b));
      EXPECT_FALSE(split.training().has_edge(p.a, p.b));
    } else {
      EXPECT_FALSE(g.graph.has_edge(p.a, p.b));
    }
  }
}

TEST(HeldOutTest, IsHeldOutMatchesPairList) {
  const GeneratedGraph g = make_graph();
  rng::Xoshiro256 rng(3);
  const HeldOutSplit split(rng, g.graph, 60);
  for (const HeldOutPair& p : split.pairs()) {
    EXPECT_TRUE(split.is_held_out(p.a, p.b));
    EXPECT_TRUE(split.is_held_out(p.b, p.a));
  }
  EXPECT_FALSE(split.is_held_out(0, 0));
}

TEST(HeldOutTest, PairsAreUnique) {
  const GeneratedGraph g = make_graph();
  rng::Xoshiro256 rng(4);
  const HeldOutSplit split(rng, g.graph, 300);
  EdgeSet seen;
  for (const HeldOutPair& p : split.pairs()) {
    EXPECT_TRUE(seen.insert(p.a, p.b)) << "duplicate pair";
  }
}

TEST(HeldOutTest, TrainingKeepsVertexCount) {
  const GeneratedGraph g = make_graph();
  rng::Xoshiro256 rng(5);
  const HeldOutSplit split(rng, g.graph, 100);
  EXPECT_EQ(split.training().num_vertices(), g.graph.num_vertices());
}

TEST(HeldOutTest, OversizedSplitThrows) {
  const GeneratedGraph g = make_graph();
  rng::Xoshiro256 rng(6);
  EXPECT_THROW(HeldOutSplit(rng, g.graph, g.graph.num_edges() * 2 + 2),
               scd::UsageError);
}

}  // namespace
}  // namespace scd::graph
