#include "graph/metrics.h"

#include "util/error.h"

#include <gtest/gtest.h>

#include <sstream>

namespace scd::graph {
namespace {

TEST(SetF1Test, IdenticalSetsScoreOne) {
  const std::vector<Vertex> x = {1, 2, 3};
  EXPECT_DOUBLE_EQ(set_f1(x, x), 1.0);
}

TEST(SetF1Test, DisjointSetsScoreZero) {
  EXPECT_DOUBLE_EQ(set_f1({1, 2}, {3, 4}), 0.0);
}

TEST(SetF1Test, PartialOverlap) {
  // |x|=2, |y|=4, intersection=2: precision 0.5, recall 1 -> F1 = 2/3.
  EXPECT_NEAR(set_f1({1, 2}, {1, 2, 3, 4}), 2.0 / 3.0, 1e-12);
}

TEST(SetF1Test, EmptySetScoresZero) {
  EXPECT_DOUBLE_EQ(set_f1({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(set_f1({1}, {}), 0.0);
}

TEST(BestMatchF1Test, PerfectCoverScoresOne) {
  const Cover cover = {{0, 1, 2}, {3, 4, 5}};
  EXPECT_DOUBLE_EQ(best_match_f1(cover, cover), 1.0);
}

TEST(BestMatchF1Test, PermutedCoverScoresOne) {
  const Cover truth = {{0, 1, 2}, {3, 4, 5}};
  const Cover detected = {{3, 4, 5}, {0, 1, 2}};
  EXPECT_DOUBLE_EQ(best_match_f1(truth, detected), 1.0);
}

TEST(BestMatchF1Test, ExtraEmptyCommunitiesIgnored) {
  const Cover truth = {{0, 1, 2}};
  const Cover detected = {{0, 1, 2}, {}, {}};
  EXPECT_DOUBLE_EQ(best_match_f1(truth, detected), 1.0);
}

TEST(BestMatchF1Test, SplitCommunityScoresBelowOne) {
  const Cover truth = {{0, 1, 2, 3}};
  const Cover detected = {{0, 1}, {2, 3}};
  const double score = best_match_f1(truth, detected);
  EXPECT_GT(score, 0.3);
  EXPECT_LT(score, 1.0);
}

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  const std::vector<std::uint32_t> labels = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(nmi(labels, labels), 1.0, 1e-12);
}

TEST(NmiTest, RelabeledPartitionsScoreOne) {
  const std::vector<std::uint32_t> a = {0, 0, 1, 1, 2, 2};
  const std::vector<std::uint32_t> b = {5, 5, 9, 9, 7, 7};
  EXPECT_NEAR(nmi(a, b), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsScoreNearZero) {
  // b splits each a-class evenly: zero mutual information.
  const std::vector<std::uint32_t> a = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<std::uint32_t> b = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(nmi(a, b), 0.0, 1e-12);
}

TEST(NmiTest, TrivialPartitionsScoreOne) {
  const std::vector<std::uint32_t> a = {0, 0, 0};
  EXPECT_DOUBLE_EQ(nmi(a, a), 1.0);
}

TEST(NmiTest, LengthMismatchThrows) {
  EXPECT_THROW(nmi({0, 1}, {0}), scd::UsageError);
}

TEST(CoverLoaderTest, ParsesCommunitiesSortedAndDeduped) {
  std::istringstream in(
      "# ground truth\n"
      "5\t3\t9\t3\n"
      "\n"
      "1 2\r\n");
  const Cover cover = load_cover_stream(in);
  ASSERT_EQ(cover.size(), 2u);
  EXPECT_EQ(cover[0], (std::vector<Vertex>{3, 5, 9}));
  EXPECT_EQ(cover[1], (std::vector<Vertex>{1, 2}));
}

TEST(CoverLoaderTest, MalformedLineThrowsWithLineNumber) {
  std::istringstream in("1 2\nfoo\n");
  try {
    load_cover_stream(in);
    FAIL() << "expected DataError";
  } catch (const scd::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(CoverLoaderTest, MissingFileThrows) {
  EXPECT_THROW(load_cover_file("/no/such/cover.txt"), scd::DataError);
}

TEST(CoverLoaderTest, RoundTripsWithBestMatchF1) {
  std::istringstream a("0 1 2\n3 4 5\n");
  std::istringstream b("3 4 5\n0 1 2\n");
  EXPECT_DOUBLE_EQ(
      best_match_f1(load_cover_stream(a), load_cover_stream(b)), 1.0);
}

}  // namespace
}  // namespace scd::graph
