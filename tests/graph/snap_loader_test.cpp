#include "graph/snap_loader.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace scd::graph {
namespace {

TEST(SnapLoaderTest, ParsesCommentsAndEdges) {
  std::istringstream in(
      "# Undirected graph: example\n"
      "# Nodes: 4 Edges: 3\n"
      "1000\t2000\n"
      "2000\t3000\n"
      "1000\t4000\n");
  const SnapLoadResult result = load_snap_stream(in);
  EXPECT_EQ(result.graph.num_vertices(), 4u);
  EXPECT_EQ(result.graph.num_edges(), 3u);
  // First-seen order remap: 1000 -> 0, 2000 -> 1, 3000 -> 2, 4000 -> 3.
  EXPECT_EQ(result.original_ids[0], 1000u);
  EXPECT_EQ(result.original_ids[3], 4000u);
  EXPECT_TRUE(result.graph.has_edge(0, 1));
  EXPECT_TRUE(result.graph.has_edge(0, 3));
  EXPECT_FALSE(result.graph.has_edge(1, 3));
}

TEST(SnapLoaderTest, SkipsSelfLoopsAndDuplicates) {
  std::istringstream in(
      "5 5\n"
      "5 6\n"
      "6 5\n");
  const SnapLoadResult result = load_snap_stream(in);
  EXPECT_EQ(result.graph.num_edges(), 1u);
}

TEST(SnapLoaderTest, HandlesSpacesTabsBlankLinesAndCrLf) {
  std::istringstream in(
      "\n"
      "  1 2\r\n"
      "\t3\t4\r\n"
      "% percent comments too\n");
  const SnapLoadResult result = load_snap_stream(in);
  EXPECT_EQ(result.graph.num_edges(), 2u);
}

TEST(SnapLoaderTest, MalformedLineThrowsWithLineNumber) {
  std::istringstream in("1 2\nfoo bar\n");
  try {
    load_snap_stream(in);
    FAIL() << "expected DataError";
  } catch (const scd::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SnapLoaderTest, MissingEndpointThrows) {
  std::istringstream in("1\n");
  EXPECT_THROW(load_snap_stream(in), scd::DataError);
}

TEST(SnapLoaderTest, MissingFileThrows) {
  EXPECT_THROW(load_snap_file("/no/such/file.txt"), scd::DataError);
}

TEST(SnapLoaderTest, EmptyInputGivesEmptyGraph) {
  std::istringstream in("# nothing here\n");
  const SnapLoadResult result = load_snap_stream(in);
  EXPECT_EQ(result.graph.num_vertices(), 0u);
}

}  // namespace
}  // namespace scd::graph
