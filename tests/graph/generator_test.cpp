#include "graph/generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"

namespace scd::graph {
namespace {

TEST(AmmsbExactTest, ProducesConsistentGroundTruth) {
  rng::Xoshiro256 rng(11);
  AmmsbExactConfig config;
  config.num_vertices = 80;
  config.num_communities = 4;
  config.alpha = 0.1;
  const GeneratedGraph g = generate_ammsb_exact(rng, config);
  EXPECT_EQ(g.graph.num_vertices(), 80u);
  EXPECT_EQ(g.truth.beta.size(), 4u);
  for (double b : g.truth.beta) {
    EXPECT_GT(b, 0.0);
    EXPECT_LT(b, 1.0);
  }
  // memberships and communities agree.
  for (Vertex v = 0; v < 80; ++v) {
    for (std::uint32_t c : g.truth.memberships[v]) {
      const auto& members = g.truth.communities[c];
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), v));
    }
  }
}

TEST(AmmsbExactTest, HigherBetaMeansMoreEdgesThanDeltaOnly) {
  rng::Xoshiro256 rng(3);
  AmmsbExactConfig dense;
  dense.num_vertices = 60;
  dense.num_communities = 2;
  dense.alpha = 0.05;   // concentrated memberships
  dense.eta0 = 20.0;    // strong communities
  dense.eta1 = 1.0;
  dense.delta = 1e-4;
  const GeneratedGraph g = generate_ammsb_exact(rng, dense);
  // With strong assortativity, edge count far exceeds the delta baseline
  // of ~0.0001 * 1770 pairs.
  EXPECT_GT(g.graph.num_edges(), 50u);
}

TEST(PlantedTest, EveryVertexHasAtLeastOneMembership) {
  rng::Xoshiro256 rng(21);
  PlantedConfig config;
  config.num_vertices = 500;
  config.num_communities = 8;
  const GeneratedGraph g = generate_planted(rng, config);
  for (Vertex v = 0; v < 500; ++v) {
    EXPECT_GE(g.truth.memberships[v].size(), 1u);
    EXPECT_LE(g.truth.memberships[v].size(), 3u);
  }
}

TEST(PlantedTest, CommunitiesAreSortedAndConsistent) {
  rng::Xoshiro256 rng(22);
  PlantedConfig config;
  config.num_vertices = 300;
  config.num_communities = 6;
  const GeneratedGraph g = generate_planted(rng, config);
  for (const auto& members : g.truth.communities) {
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  }
  for (Vertex v = 0; v < 300; ++v) {
    for (std::uint32_t c : g.truth.memberships[v]) {
      const auto& members = g.truth.communities[c];
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), v));
    }
  }
}

TEST(PlantedTest, IntraCommunityDensityExceedsBackground) {
  rng::Xoshiro256 rng(23);
  PlantedConfig config;
  config.num_vertices = 400;
  config.num_communities = 4;
  config.p_two_memberships = 0.0;
  config.p_three_memberships = 0.0;
  config.beta_lo = 0.2;
  config.beta_hi = 0.3;
  config.delta = 1e-3;
  const GeneratedGraph g = generate_planted(rng, config);
  // Count edges inside community 0 vs across communities 0/1.
  const auto& c0 = g.truth.communities[0];
  const auto& c1 = g.truth.communities[1];
  std::uint64_t intra = 0;
  for (std::size_t i = 0; i < c0.size(); ++i) {
    for (std::size_t j = i + 1; j < c0.size(); ++j) {
      if (g.graph.has_edge(c0[i], c0[j])) ++intra;
    }
  }
  std::uint64_t inter = 0;
  for (Vertex u : c0) {
    for (Vertex v : c1) {
      if (u != v && g.graph.has_edge(u, v)) ++inter;
    }
  }
  const double intra_rate =
      double(intra) / (double(c0.size()) * (double(c0.size()) - 1) / 2);
  const double inter_rate =
      double(inter) / (double(c0.size()) * double(c1.size()));
  EXPECT_GT(intra_rate, 10 * inter_rate);
}

class PlantedDegreeTest : public ::testing::TestWithParam<double> {};

TEST_P(PlantedDegreeTest, ConfigForDegreeLandsNearTarget) {
  const double target = GetParam();
  rng::Xoshiro256 rng(31);
  const PlantedConfig config = planted_config_for_degree(2000, 16, target);
  const GeneratedGraph g = generate_planted(rng, config);
  const double avg_degree =
      2.0 * double(g.graph.num_edges()) / double(g.graph.num_vertices());
  EXPECT_NEAR(avg_degree, target, 0.35 * target)
      << "edges=" << g.graph.num_edges();
}

INSTANTIATE_TEST_SUITE_P(Degrees, PlantedDegreeTest,
                         ::testing::Values(5.0, 15.0, 40.0));

TEST(PlantedTest, InvalidConfigsThrow) {
  rng::Xoshiro256 rng(1);
  PlantedConfig bad;
  bad.num_vertices = 10;
  bad.p_two_memberships = 0.8;
  bad.p_three_memberships = 0.4;  // sums > 1
  EXPECT_THROW(generate_planted(rng, bad), scd::UsageError);

  PlantedConfig bad_beta;
  bad_beta.beta_lo = 0.5;
  bad_beta.beta_hi = 0.4;  // inverted
  EXPECT_THROW(generate_planted(rng, bad_beta), scd::UsageError);
}

TEST(PlantedTest, DeterministicGivenSameEngineState) {
  PlantedConfig config;
  config.num_vertices = 200;
  config.num_communities = 5;
  rng::Xoshiro256 rng1(5);
  rng::Xoshiro256 rng2(5);
  const GeneratedGraph a = generate_planted(rng1, config);
  const GeneratedGraph b = generate_planted(rng2, config);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.truth.beta, b.truth.beta);
}

}  // namespace
}  // namespace scd::graph
