#include "graph/minibatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/builder.h"
#include "graph/generator.h"
#include "util/error.h"

namespace scd::graph {
namespace {

GeneratedGraph make_graph(std::uint64_t seed = 9) {
  rng::Xoshiro256 rng(seed);
  PlantedConfig config;
  config.num_vertices = 150;
  config.num_communities = 5;
  config.beta_lo = 0.15;
  config.beta_hi = 0.3;
  config.delta = 2e-3;
  return generate_planted(rng, config);
}

/// An arbitrary *symmetric* per-pair test function. Symmetry matters:
/// stratified node sampling visits each pair from either endpoint, so it
/// estimates the symmetrized sum — which equals the plain sum exactly
/// when g(a,b) = g(b,a), as the theta gradient of Eqn 4 is.
double test_fn(Vertex a, Vertex b, bool link) {
  return 0.3 + 0.01 * (a + b) + 1e-4 * double(a) * double(b) +
         (link ? 5.0 : 0.0);
}

/// Full-graph target: sum over all non-held-out pairs.
double full_sum(const Graph& g, const HeldOutSplit* heldout) {
  double total = 0.0;
  for (Vertex a = 0; a < g.num_vertices(); ++a) {
    for (Vertex b = a + 1; b < g.num_vertices(); ++b) {
      if (heldout != nullptr && heldout->is_held_out(a, b)) continue;
      total += test_fn(a, b, g.has_edge(a, b));
    }
  }
  return total;
}

class MinibatchUnbiasednessTest
    : public ::testing::TestWithParam<MinibatchStrategy> {};

TEST_P(MinibatchUnbiasednessTest, ScaledSumMatchesFullGraphInExpectation) {
  const GeneratedGraph gen = make_graph();
  MinibatchSampler::Options options;
  options.strategy = GetParam();
  options.num_pairs = 24;
  options.nonlink_partitions = 8;
  const MinibatchSampler sampler(gen.graph, nullptr, options);
  const double target = full_sum(gen.graph, nullptr);

  rng::Xoshiro256 rng(123);
  double acc = 0.0;
  constexpr int kDraws = 60000;
  for (int d = 0; d < kDraws; ++d) {
    const Minibatch mb = sampler.draw(rng);
    double s = 0.0;
    for (const MinibatchPair& p : mb.pairs) {
      s += test_fn(p.a, p.b, p.link);
    }
    acc += mb.scale * s;
  }
  const double estimate = acc / kDraws;
  EXPECT_NEAR(estimate / target, 1.0, 0.03)
      << "estimate=" << estimate << " target=" << target;
}

INSTANTIATE_TEST_SUITE_P(Strategies, MinibatchUnbiasednessTest,
                         ::testing::Values(
                             MinibatchStrategy::kRandomPair,
                             MinibatchStrategy::kStratifiedRandomNode));

TEST(MinibatchTest, RandomPairHasRequestedSizeAndUniquePairs) {
  const GeneratedGraph gen = make_graph();
  MinibatchSampler::Options options;
  options.strategy = MinibatchStrategy::kRandomPair;
  options.num_pairs = 40;
  const MinibatchSampler sampler(gen.graph, nullptr, options);
  rng::Xoshiro256 rng(5);
  for (int d = 0; d < 50; ++d) {
    const Minibatch mb = sampler.draw(rng);
    ASSERT_EQ(mb.pairs.size(), 40u);
    EdgeSet seen;
    for (const MinibatchPair& p : mb.pairs) {
      ASSERT_TRUE(seen.insert(p.a, p.b));
      ASSERT_EQ(p.link, gen.graph.has_edge(p.a, p.b));
    }
  }
}

TEST(MinibatchTest, VerticesAreSortedUniqueUnionOfPairs) {
  const GeneratedGraph gen = make_graph();
  MinibatchSampler::Options options;
  options.strategy = MinibatchStrategy::kRandomPair;
  options.num_pairs = 16;
  const MinibatchSampler sampler(gen.graph, nullptr, options);
  rng::Xoshiro256 rng(6);
  const Minibatch mb = sampler.draw(rng);
  EXPECT_TRUE(std::is_sorted(mb.vertices.begin(), mb.vertices.end()));
  EXPECT_EQ(std::adjacent_find(mb.vertices.begin(), mb.vertices.end()),
            mb.vertices.end());
  for (const MinibatchPair& p : mb.pairs) {
    EXPECT_TRUE(std::binary_search(mb.vertices.begin(), mb.vertices.end(),
                                   p.a));
    EXPECT_TRUE(std::binary_search(mb.vertices.begin(), mb.vertices.end(),
                                   p.b));
  }
}

TEST(MinibatchTest, StratifiedLinkStratumContainsExactlyTheLinks) {
  const GeneratedGraph gen = make_graph();
  MinibatchSampler::Options options;
  options.strategy = MinibatchStrategy::kStratifiedRandomNode;
  const MinibatchSampler sampler(gen.graph, nullptr, options);
  rng::Xoshiro256 rng(7);
  const auto n = static_cast<double>(gen.graph.num_vertices());
  bool saw_link_stratum = false;
  for (int d = 0; d < 100 && !saw_link_stratum; ++d) {
    const Minibatch mb = sampler.draw(rng);
    if (!mb.pairs.empty() && mb.pairs.front().link) {
      saw_link_stratum = true;
      const Vertex a = mb.pairs.front().a;
      EXPECT_EQ(mb.pairs.size(), gen.graph.degree(a));
      EXPECT_DOUBLE_EQ(mb.scale, n);
      for (const MinibatchPair& p : mb.pairs) {
        EXPECT_EQ(p.a, a);
        EXPECT_TRUE(p.link);
      }
    }
  }
  EXPECT_TRUE(saw_link_stratum);
}

TEST(MinibatchTest, HeldOutPairsNeverSampled) {
  const GeneratedGraph gen = make_graph();
  rng::Xoshiro256 hrng(77);
  const HeldOutSplit split(hrng, gen.graph, 120);
  MinibatchSampler::Options options;
  options.strategy = MinibatchStrategy::kRandomPair;
  options.num_pairs = 32;
  const MinibatchSampler sampler(split.training(), &split, options);
  rng::Xoshiro256 rng(8);
  for (int d = 0; d < 300; ++d) {
    const Minibatch mb = sampler.draw(rng);
    for (const MinibatchPair& p : mb.pairs) {
      ASSERT_FALSE(split.is_held_out(p.a, p.b));
    }
  }
}

TEST(NeighborSamplingTest, DistinctExcludesSelfAndFlagsLinks) {
  const GeneratedGraph gen = make_graph();
  rng::Xoshiro256 rng(9);
  const Vertex a = 3;
  const auto adj = gen.graph.neighbors(a);
  for (int d = 0; d < 100; ++d) {
    const auto samples = sample_neighbors(
        rng, gen.graph.num_vertices(), a, adj, 20);
    ASSERT_EQ(samples.size(), 20u);
    std::set<Vertex> seen;
    for (const NeighborSample& s : samples) {
      ASSERT_NE(s.b, a);
      ASSERT_TRUE(seen.insert(s.b).second);
      ASSERT_EQ(s.link, gen.graph.has_edge(a, s.b));
    }
  }
}

TEST(NeighborSamplingTest, OverdrawThrows) {
  const GeneratedGraph gen = make_graph();
  rng::Xoshiro256 rng(10);
  EXPECT_THROW(sample_neighbors(rng, 5, 0, {}, 5), scd::UsageError);
}


TEST(NeighborSamplingTest, LinkAwareSetStructure) {
  const GeneratedGraph gen = make_graph();
  rng::Xoshiro256 rng(11);
  const Vertex a = 5;
  const auto adj = gen.graph.neighbors(a);
  const NeighborSet set = sample_neighbors_link_aware(
      rng, gen.graph.num_vertices(), a, adj, 20);
  ASSERT_EQ(set.exact_prefix, adj.size());
  ASSERT_EQ(set.samples.size(), adj.size() + 20);
  // Prefix holds exactly the links, in adjacency order.
  for (std::size_t i = 0; i < set.exact_prefix; ++i) {
    EXPECT_EQ(set.samples[i].b, adj[i]);
    EXPECT_TRUE(set.samples[i].link);
  }
  // Tail holds distinct non-links, never self.
  std::set<Vertex> seen;
  for (std::size_t i = set.exact_prefix; i < set.samples.size(); ++i) {
    EXPECT_FALSE(set.samples[i].link);
    EXPECT_NE(set.samples[i].b, a);
    EXPECT_FALSE(gen.graph.has_edge(a, set.samples[i].b));
    EXPECT_TRUE(seen.insert(set.samples[i].b).second);
  }
  const double expected_scale =
      double(gen.graph.num_vertices() - 1 - adj.size()) / 20.0;
  EXPECT_DOUBLE_EQ(set.sampled_scale, expected_scale);
}

TEST(NeighborSamplingTest, DrawNeighborSetDispatchesModes) {
  const GeneratedGraph gen = make_graph();
  rng::Xoshiro256 rng(12);
  const Vertex a = 9;
  const auto adj = gen.graph.neighbors(a);
  const NeighborSet uniform = draw_neighbor_set(
      rng, NeighborMode::kUniform, gen.graph.num_vertices(), a, adj, 10);
  EXPECT_EQ(uniform.exact_prefix, 0u);
  EXPECT_EQ(uniform.samples.size(), 10u);
  EXPECT_DOUBLE_EQ(uniform.sampled_scale,
                   double(gen.graph.num_vertices()) / 10.0);
  const NeighborSet aware = draw_neighbor_set(
      rng, NeighborMode::kLinkAware, gen.graph.num_vertices(), a, adj, 10);
  EXPECT_EQ(aware.exact_prefix, adj.size());
}

// Property: for any per-neighbor function g, both neighbor-set modes
// estimate sum over b != a of g(b, y_ab) without bias.
class NeighborEstimatorTest : public ::testing::TestWithParam<NeighborMode> {
};

TEST_P(NeighborEstimatorTest, UnbiasedForArbitraryG) {
  const GeneratedGraph gen = make_graph();
  const Vertex a = 3;
  const auto adj = gen.graph.neighbors(a);
  auto g_fn = [](Vertex b, bool link) {
    return 0.01 * b + (link ? 3.0 : -0.5);
  };
  double target = 0.0;
  for (Vertex b = 0; b < gen.graph.num_vertices(); ++b) {
    if (b != a) target += g_fn(b, gen.graph.has_edge(a, b));
  }
  rng::Xoshiro256 rng(13);
  double acc = 0.0;
  constexpr int kDraws = 40000;
  for (int d = 0; d < kDraws; ++d) {
    const NeighborSet set = draw_neighbor_set(
        rng, GetParam(), gen.graph.num_vertices(), a, adj, 12);
    double exact = 0.0;
    double sampled = 0.0;
    for (std::size_t i = 0; i < set.samples.size(); ++i) {
      const double g = g_fn(set.samples[i].b, set.samples[i].link);
      (i < set.exact_prefix ? exact : sampled) += g;
    }
    acc += exact + set.sampled_scale * sampled;
  }
  EXPECT_NEAR(acc / kDraws / target, 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Modes, NeighborEstimatorTest,
                         ::testing::Values(NeighborMode::kUniform,
                                           NeighborMode::kLinkAware));

TEST(NeighborSamplingTest, LinkAwareClampsForNearCompleteVertices) {
  // Vertex 0 is connected to all but one peer: only one non-link exists.
  GraphBuilder b(6);
  for (Vertex v = 1; v < 5; ++v) b.add_edge(0, v);
  const Graph g = std::move(b).build();
  rng::Xoshiro256 rng(3);
  const NeighborSet set = sample_neighbors_link_aware(
      rng, g.num_vertices(), 0, g.neighbors(0), 20);
  EXPECT_EQ(set.exact_prefix, 4u);
  EXPECT_EQ(set.samples.size(), 5u);  // 4 links + the single non-link
  EXPECT_EQ(set.samples.back().b, 5u);
  EXPECT_DOUBLE_EQ(set.sampled_scale, 1.0);
}

// -- alias-anchor equivalence ---------------------------------------------
// The alias_anchor option swaps the anchor draw from rng.next_below to
// an equal-weight Vose table. Equal weights make the table a pure
// pass-through (prob[i] == 1.0 exactly, alias[i] == i), so the anchor
// *distribution* is identical — in fact, the anchor *value* is identical
// for the same rng state, because both paths spend one next_below(n)
// first. Only the stream position afterwards differs (the alias path
// also consumes its coin).

TEST(MinibatchTest, AliasAnchorDrawsIdenticalAnchorVertex) {
  const GeneratedGraph g = make_graph();
  MinibatchSampler::Options plain_opt;
  plain_opt.strategy = MinibatchStrategy::kStratifiedRandomNode;
  MinibatchSampler::Options alias_opt = plain_opt;
  alias_opt.alias_anchor = true;
  const MinibatchSampler plain(g.graph, nullptr, plain_opt);
  const MinibatchSampler alias(g.graph, nullptr, alias_opt);

  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    rng::Xoshiro256 rng_p(seed);
    rng::Xoshiro256 rng_a(seed);
    const Minibatch mp = plain.draw(rng_p);
    const Minibatch ma = alias.draw(rng_a);
    // Both strata emit pairs anchored at `a` in the first slot; an empty
    // minibatch (isolated-vertex link stratum) carries no anchor to
    // compare.
    if (mp.pairs.empty() || ma.pairs.empty()) continue;
    EXPECT_EQ(mp.pairs[0].a, ma.pairs[0].a) << "seed " << seed;
  }
}

TEST(MinibatchTest, AliasAnchorPreservesStratumAndScaleDistribution) {
  const GeneratedGraph g = make_graph();
  MinibatchSampler::Options opt;
  opt.strategy = MinibatchStrategy::kStratifiedRandomNode;
  opt.alias_anchor = true;
  const MinibatchSampler sampler(g.graph, nullptr, opt);
  const auto n = g.graph.num_vertices();

  const int draws = 40000;
  int links = 0;
  std::vector<int> anchor_counts(n, 0);
  rng::Xoshiro256 rng(123);
  for (int i = 0; i < draws; ++i) {
    const Minibatch mb = sampler.draw(rng);
    if (!mb.pairs.empty()) {
      anchor_counts[mb.pairs[0].a]++;
      if (mb.pairs[0].link) links++;
    }
  }
  // Stratum coin is fair.
  EXPECT_NEAR(static_cast<double>(links) / draws, 0.5, 0.02);
  // Anchors are uniform: every vertex within ~5 sigma of draws/n.
  const double expect = static_cast<double>(draws) / n;
  const double sigma = std::sqrt(expect * (1.0 - 1.0 / n));
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_NEAR(anchor_counts[v], expect, 5.0 * sigma) << "vertex " << v;
  }
}

}  // namespace
}  // namespace scd::graph
