#include "graph/edge_set.h"

#include <gtest/gtest.h>

#include "random/xoshiro.h"
#include "util/error.h"

namespace scd::graph {
namespace {

TEST(EdgeSetTest, InsertAndContainsAreSymmetric) {
  EdgeSet set;
  EXPECT_TRUE(set.insert(3, 7));
  EXPECT_TRUE(set.contains(3, 7));
  EXPECT_TRUE(set.contains(7, 3));
  EXPECT_FALSE(set.contains(3, 8));
}

TEST(EdgeSetTest, DuplicateInsertReturnsFalse) {
  EdgeSet set;
  EXPECT_TRUE(set.insert(1, 2));
  EXPECT_FALSE(set.insert(2, 1));
  EXPECT_EQ(set.size(), 1u);
}

TEST(EdgeSetTest, SelfLoopRejected) {
  EdgeSet set;
  EXPECT_THROW(set.insert(5, 5), scd::UsageError);
  EXPECT_FALSE(set.contains(5, 5));
}

TEST(EdgeSetTest, VertexZeroEdgesWork) {
  // Edge (0, x) encodes with high bits zero; ensure the empty-slot
  // sentinel does not collide.
  EdgeSet set;
  EXPECT_TRUE(set.insert(0, 1));
  EXPECT_TRUE(set.contains(0, 1));
  EXPECT_FALSE(set.contains(0, 2));
}

TEST(EdgeSetTest, GrowsPastInitialCapacity) {
  EdgeSet set(4);
  rng::Xoshiro256 rng(1);
  std::vector<std::pair<Vertex, Vertex>> inserted;
  for (int i = 0; i < 5000; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(10000));
    auto v = static_cast<Vertex>(rng.next_below(10000));
    if (u == v) continue;
    set.insert(u, v);
    inserted.emplace_back(u, v);
  }
  for (const auto& [u, v] : inserted) {
    ASSERT_TRUE(set.contains(u, v));
  }
}

TEST(EdgeSetTest, ForEachVisitsExactlyTheContents) {
  EdgeSet set;
  set.insert(1, 2);
  set.insert(3, 4);
  set.insert(1, 4);
  std::size_t count = 0;
  set.for_each([&](Vertex u, Vertex v) {
    EXPECT_TRUE(set.contains(u, v));
    ++count;
  });
  EXPECT_EQ(count, 3u);
}

TEST(EdgeEncodingTest, RoundTripAndCanonical) {
  const std::uint64_t code = encode_edge(9, 4);
  EXPECT_EQ(code, encode_edge(4, 9));
  const Edge e = decode_edge(code);
  EXPECT_EQ(e.a, 4u);
  EXPECT_EQ(e.b, 9u);
}

}  // namespace
}  // namespace scd::graph
