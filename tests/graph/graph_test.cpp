#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "util/error.h"

namespace scd::graph {
namespace {

Graph triangle_plus_tail() {
  // 0-1, 1-2, 0-2 (triangle), 2-3 (tail); vertex 4 isolated.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  return std::move(b).build();
}

TEST(GraphTest, CountsAndDegrees) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_pairs(), 10u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.density(), 0.4);
}

TEST(GraphTest, NeighborsAreSorted) {
  const Graph g = triangle_plus_tail();
  const auto n2 = g.neighbors(2);
  ASSERT_EQ(n2.size(), 3u);
  EXPECT_EQ(n2[0], 0u);
  EXPECT_EQ(n2[1], 1u);
  EXPECT_EQ(n2[2], 3u);
}

TEST(GraphTest, HasEdgeBothDirectionsAndNegatives) {
  const Graph g = triangle_plus_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(4, 0));
  EXPECT_FALSE(g.has_edge(1, 1));  // self
}

TEST(GraphBuilderTest, DuplicatesAreMerged) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilderTest, SelfLoopRejected) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), scd::UsageError);
}

TEST(GraphBuilderTest, FixedVertexCountEnforced) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), scd::UsageError);
}

TEST(GraphBuilderTest, AutoVertexCountGrows) {
  GraphBuilder b;
  b.add_edge(0, 9);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(GraphTest, CsrValidationCatchesBadOffsets) {
  EXPECT_THROW(Graph({0, 2}, {1}), scd::UsageError);   // offsets vs size
  EXPECT_THROW(Graph({0, 2, 1}, {1, 0}), scd::UsageError);  // non-monotone
}

TEST(GraphTest, AdjacencyBytesMatchesDegree) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.adjacency_bytes(2), 3 * sizeof(Vertex));
  EXPECT_EQ(g.adjacency_bytes(4), 0u);
}

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace scd::graph
