#include "graph/datasets.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd::graph {
namespace {

TEST(DatasetsTest, SixStandardDatasetsInPaperOrder) {
  const auto& specs = standard_datasets();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "com-LiveJournal");
  EXPECT_EQ(specs[1].name, "com-Friendster");
  EXPECT_EQ(specs[5].name, "com-Amazon");
}

TEST(DatasetsTest, PaperNumbersMatchTable2) {
  const DatasetSpec& friendster = dataset_by_name("com-Friendster");
  EXPECT_EQ(friendster.paper_vertices, 65608366u);
  EXPECT_EQ(friendster.paper_edges, 1806067135u);
  EXPECT_EQ(friendster.paper_ground_truth_communities, 957154u);
  const DatasetSpec& dblp = dataset_by_name("com-DBLP");
  EXPECT_EQ(dblp.paper_vertices, 317080u);
  EXPECT_EQ(dblp.paper_edges, 1049866u);
}

TEST(DatasetsTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(dataset_by_name("COM-ORKUT").name, "com-Orkut");
}

TEST(DatasetsTest, UnknownNameThrows) {
  EXPECT_THROW(dataset_by_name("com-Nothing"), scd::UsageError);
}

TEST(DatasetsTest, StandInDensityTracksPaperDensity) {
  // The smaller stand-ins: generate and compare average degree.
  for (const char* name : {"com-DBLP", "com-Amazon", "com-Youtube"}) {
    const DatasetSpec& spec = dataset_by_name(name);
    rng::Xoshiro256 rng(1234);
    const GeneratedGraph g = generate_standin(rng, spec);
    EXPECT_EQ(g.graph.num_vertices(), spec.sim_vertices);
    const double avg_degree = 2.0 * double(g.graph.num_edges()) /
                              double(g.graph.num_vertices());
    EXPECT_NEAR(avg_degree, spec.sim_avg_degree, 0.4 * spec.sim_avg_degree)
        << name;
    const double paper_degree = 2.0 * double(spec.paper_edges) /
                                double(spec.paper_vertices);
    EXPECT_NEAR(spec.sim_avg_degree, paper_degree, 0.05 * paper_degree)
        << name;
  }
}

TEST(DatasetsTest, GroundTruthHasRequestedCommunityCount) {
  const DatasetSpec& spec = dataset_by_name("com-DBLP");
  rng::Xoshiro256 rng(99);
  const GeneratedGraph g = generate_standin(rng, spec);
  EXPECT_EQ(g.truth.communities.size(), spec.sim_communities);
}

}  // namespace
}  // namespace scd::graph
