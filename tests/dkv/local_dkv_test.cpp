#include "dkv/local_dkv.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd::dkv {
namespace {

sim::ComputeModel node() {
  sim::ComputeModel m;
  m.mem_bandwidth_Bps = 1e9;
  return m;
}

TEST(LocalDkvTest, InitThenGetRoundTrips) {
  LocalDkv store(10, 3, node());
  store.init_row(4, std::vector<float>{1.0f, 2.0f, 3.0f});
  std::vector<std::uint64_t> keys = {4};
  std::vector<float> out(3);
  store.get_rows(0, keys, out);
  EXPECT_EQ(out, (std::vector<float>{1.0f, 2.0f, 3.0f}));
}

TEST(LocalDkvTest, PutOverwritesAndBatches) {
  LocalDkv store(10, 2, node());
  std::vector<std::uint64_t> keys = {1, 5, 9};
  const std::vector<float> values = {1, 2, 3, 4, 5, 6};
  store.put_rows(0, keys, values);
  std::vector<float> out(6);
  store.get_rows(0, keys, out);
  EXPECT_EQ(out, values);
  EXPECT_EQ(store.row(5)[1], 4.0f);
}

TEST(LocalDkvTest, CostIsMemoryBandwidthBound) {
  LocalDkv store(1000, 250, node());  // 1000 B rows at 1 GB/s = 1 us/row
  std::vector<std::uint64_t> keys(100);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  std::vector<float> out(100 * 250);
  const double cost = store.get_rows(0, keys, out);
  EXPECT_NEAR(cost, 100e-6, 1e-9);
  EXPECT_DOUBLE_EQ(store.write_cost(0, 100, 0), cost);
}

TEST(LocalDkvTest, SizeMismatchThrows) {
  LocalDkv store(4, 2, node());
  std::vector<std::uint64_t> keys = {0, 1};
  std::vector<float> too_small(3);
  EXPECT_THROW(store.get_rows(0, keys, too_small), scd::UsageError);
  EXPECT_THROW(store.init_row(0, std::vector<float>{1.0f}),
               scd::UsageError);
}

TEST(LocalDkvTest, MutableRowAliasesStorage) {
  LocalDkv store(2, 2, node());
  store.mutable_row(1)[0] = 7.0f;
  EXPECT_EQ(store.row(1)[0], 7.0f);
}

}  // namespace
}  // namespace scd::dkv
