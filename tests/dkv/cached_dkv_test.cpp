#include "dkv/cached_dkv.h"

#include <gtest/gtest.h>

#include "dkv/local_dkv.h"
#include "dkv/sim_rdma_dkv.h"
#include "random/xoshiro.h"
#include "trace/recorder.h"
#include "util/error.h"

namespace scd::dkv {
namespace {

sim::ComputeModel node() { return sim::ComputeModel{}; }

struct Fixture {
  LocalDkv inner;
  CachedDkv cache;

  explicit Fixture(std::uint64_t capacity)
      : inner(100, 3, node()), cache(inner, capacity) {
    for (std::uint64_t v = 0; v < 100; ++v) {
      const auto f = static_cast<float>(v);
      inner.init_row(v, std::vector<float>{f, f + 0.5f, f + 0.25f});
    }
  }
};

TEST(CachedDkvTest, MissThenHitReturnsSameData) {
  Fixture f(8);
  std::vector<std::uint64_t> keys = {7};
  std::vector<float> out(3);
  f.cache.get_rows(0, keys, out);
  EXPECT_EQ(f.cache.misses(), 1u);
  std::vector<float> again(3);
  const double cost = f.cache.get_rows(0, keys, again);
  EXPECT_EQ(f.cache.hits(), 1u);
  EXPECT_EQ(out, again);
  // All hits: no inner fetch, just the local copy of one cached row.
  EXPECT_DOUBLE_EQ(cost, f.cache.hit_cost(1));
  EXPECT_GT(cost, 0.0);
}

TEST(CachedDkvTest, HitsCostLessThanRemoteMisses) {
  // Wrap a sharded store so misses pay network cost: a hit (local memcpy)
  // must be strictly cheaper than re-fetching the row remotely.
  SimRdmaDkv inner(100, 3, 4, sim::NetworkModel{}, node());
  for (std::uint64_t v = 0; v < 100; ++v) {
    const auto f = static_cast<float>(v);
    inner.init_row(v, std::vector<float>{f, f + 0.5f, f + 0.25f});
  }
  CachedDkv cache(inner, 8, node());
  std::vector<std::uint64_t> keys = {80};  // remote for requester shard 0
  std::vector<float> out(3);
  const double miss_cost = cache.get_rows(0, keys, out);
  const double hit_cost = cache.get_rows(0, keys, out);
  EXPECT_DOUBLE_EQ(miss_cost, inner.read_cost_keys(0, keys));
  EXPECT_LT(hit_cost, miss_cost);
  EXPECT_GT(hit_cost, 0.0);
}

TEST(CachedDkvTest, MixedBatchSplitsCorrectly) {
  Fixture f(8);
  std::vector<std::uint64_t> warm = {1, 2};
  std::vector<float> out(6);
  f.cache.get_rows(0, warm, out);
  std::vector<std::uint64_t> mixed = {2, 3, 1, 4};
  std::vector<float> out2(12);
  f.cache.get_rows(0, mixed, out2);
  EXPECT_EQ(f.cache.hits(), 2u);
  EXPECT_EQ(f.cache.misses(), 4u);  // 2 warm-up + 2 new
  // Row order preserved regardless of hit/miss interleaving.
  EXPECT_FLOAT_EQ(out2[0], 2.0f);
  EXPECT_FLOAT_EQ(out2[3], 3.0f);
  EXPECT_FLOAT_EQ(out2[6], 1.0f);
  EXPECT_FLOAT_EQ(out2[9], 4.0f);
}

TEST(CachedDkvTest, EvictsLeastRecentlyUsed) {
  Fixture f(2);
  std::vector<float> out(3);
  auto get = [&](std::uint64_t key) {
    std::vector<std::uint64_t> keys = {key};
    f.cache.get_rows(0, keys, out);
  };
  get(1);
  get(2);
  get(1);  // 1 now most recent
  get(3);  // evicts 2
  EXPECT_EQ(f.cache.cached_rows(), 2u);
  const std::uint64_t hits_before = f.cache.hits();
  get(1);
  EXPECT_EQ(f.cache.hits(), hits_before + 1);  // 1 survived
  get(2);
  EXPECT_EQ(f.cache.misses(), 4u);  // 1,2,3 cold + re-fetch of 2
}

TEST(CachedDkvTest, PutRefreshesCachedCopy) {
  Fixture f(4);
  std::vector<std::uint64_t> keys = {5};
  std::vector<float> out(3);
  f.cache.get_rows(0, keys, out);
  const std::vector<float> updated = {9.0f, 9.5f, 9.25f};
  f.cache.put_rows(0, keys, updated);
  f.cache.get_rows(0, keys, out);
  EXPECT_EQ(out, updated);  // hit served the fresh value
  EXPECT_EQ(f.cache.hits(), 1u);
}

TEST(CachedDkvTest, InvalidateAllForcesRefetch) {
  Fixture f(4);
  std::vector<std::uint64_t> keys = {5};
  std::vector<float> out(3);
  f.cache.get_rows(0, keys, out);
  f.cache.invalidate_all();
  EXPECT_EQ(f.cache.cached_rows(), 0u);
  f.cache.get_rows(0, keys, out);
  EXPECT_EQ(f.cache.misses(), 2u);
}

TEST(CachedDkvTest, UniformRandomAccessHitRateIsCapacityOverN) {
  // The paper's Section III-A claim, quantified: random-row reads hit a
  // cache of capacity C over N rows at rate ~C/N.
  Fixture f(10);  // capacity 10 of 100 rows
  rng::Xoshiro256 rng(3);
  std::vector<float> out(3);
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint64_t> keys = {rng.next_below(100)};
    f.cache.get_rows(0, keys, out);
  }
  EXPECT_NEAR(f.cache.hit_rate(), 0.10, 0.02);
}

TEST(CachedDkvTest, ZeroCapacityRejected) {
  LocalDkv inner(4, 2, node());
  EXPECT_THROW(CachedDkv(inner, 0), scd::UsageError);
}

TEST(CachedDkvTest, TraceCountsHitAndMissRowsOnRequesterLane) {
  Fixture f(8);
  trace::TraceRecorder rec(4);
  f.cache.install_trace(&rec, /*rank_offset=*/1);  // shard s -> lane s+1

  std::vector<std::uint64_t> warm = {1, 2};
  std::vector<float> out(6);
  f.cache.get_rows(1, warm, out);  // 2 cold misses on lane 2
  std::vector<std::uint64_t> mixed = {2, 3, 1};
  std::vector<float> out2(9);
  f.cache.get_rows(1, mixed, out2);  // 2 hits + 1 miss on lane 2

  using trace::Metric;
  EXPECT_EQ(rec.metrics().counter(Metric::kDkvHits, 2), 2u);
  EXPECT_EQ(rec.metrics().counter(Metric::kDkvMisses, 2), 3u);
  EXPECT_EQ(rec.metrics().counter(Metric::kDkvHits, 1), 0u)
      << "counts land on the requester's lane only";
  EXPECT_EQ(rec.metrics().counter_total(Metric::kDkvHits),
            f.cache.hits());
  EXPECT_EQ(rec.metrics().counter_total(Metric::kDkvMisses),
            f.cache.misses());

  f.cache.install_trace(nullptr);
  f.cache.get_rows(1, mixed, out2);  // uninstalled: nothing more counted
  EXPECT_EQ(rec.metrics().counter_total(Metric::kDkvHits), 2u);
}

TEST(CachedDkvTest, TraceCostSplitHitsLocalMissesForwarded) {
  // The accounting contract behind the counters: a batch of H hits and
  // M misses costs exactly hit_cost(H) (local memcpy of the cached
  // rows) plus the inner store's price for the M missed keys.
  SimRdmaDkv inner(100, 3, 4, sim::NetworkModel{}, node());
  for (std::uint64_t v = 0; v < 100; ++v) {
    const auto f = static_cast<float>(v);
    inner.init_row(v, std::vector<float>{f, f + 0.5f, f + 0.25f});
  }
  CachedDkv cache(inner, 8, node());
  trace::TraceRecorder rec(5);
  cache.install_trace(&rec);

  std::vector<std::uint64_t> warm = {80, 81};  // remote for shard 0
  std::vector<float> out(6);
  cache.get_rows(0, warm, out);
  std::vector<std::uint64_t> mixed = {80, 81, 40};  // 2 hits + 1 miss
  std::vector<float> out2(9);
  const double cost = cache.get_rows(0, mixed, out2);
  const std::vector<std::uint64_t> missed = {40};
  EXPECT_DOUBLE_EQ(cost,
                   cache.hit_cost(2) + inner.read_cost_keys(0, missed));
  EXPECT_EQ(rec.metrics().counter(trace::Metric::kDkvHits, 1), 2u);
  EXPECT_EQ(rec.metrics().counter(trace::Metric::kDkvMisses, 1), 3u);
}

}  // namespace
}  // namespace scd::dkv
