#include "dkv/partition.h"

#include <gtest/gtest.h>

namespace scd::dkv {
namespace {

class PartitionSweepTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(PartitionSweepTest, RangesTileTheRowsAndOwnerInverts) {
  const auto [rows, shards] = GetParam();
  const RowPartition part(rows, shards);
  std::uint64_t covered = 0;
  std::uint64_t prev_end = 0;
  for (unsigned s = 0; s < shards; ++s) {
    const auto [lo, hi] = part.range(s);
    EXPECT_EQ(lo, prev_end);
    for (std::uint64_t r = lo; r < hi; ++r) {
      ASSERT_EQ(part.owner(r), s) << "row " << r;
    }
    covered += hi - lo;
    prev_end = hi;
  }
  EXPECT_EQ(covered, rows);
}

TEST_P(PartitionSweepTest, BalancedWithinOneRow) {
  const auto [rows, shards] = GetParam();
  const RowPartition part(rows, shards);
  std::uint64_t min_size = rows;
  std::uint64_t max_size = 0;
  for (unsigned s = 0; s < shards; ++s) {
    const auto [lo, hi] = part.range(s);
    min_size = std::min(min_size, hi - lo);
    max_size = std::max(max_size, hi - lo);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweepTest,
    ::testing::Values(std::pair{100ull, 1u}, std::pair{100ull, 7u},
                      std::pair{100ull, 64u}, std::pair{64ull, 64u},
                      std::pair{65ull, 64u}, std::pair{1000ull, 3u},
                      std::pair{5ull, 8u}));

TEST(PartitionTest, ZeroShardsRejected) {
  EXPECT_THROW(RowPartition(10, 0), scd::UsageError);
}

}  // namespace
}  // namespace scd::dkv
