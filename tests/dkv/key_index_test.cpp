#include "dkv/key_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "dkv/sim_rdma_dkv.h"
#include "random/xoshiro.h"

namespace scd::dkv {
namespace {

TEST(KeyIndexTest, UniqueKeysSortedAndRemapRoundTrips) {
  KeyIndex index;
  std::vector<std::uint64_t> keys = {7, 3, 7, 9, 3, 3, 1};
  index.build(keys);
  const auto unique = index.unique_keys();
  ASSERT_EQ(unique.size(), 4u);
  EXPECT_TRUE(std::is_sorted(unique.begin(), unique.end()));
  ASSERT_EQ(index.remap().size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(unique[index.remap()[i]], keys[i]);
  }
}

TEST(KeyIndexTest, AllSameKeyCollapsesToOne) {
  KeyIndex index;
  std::vector<std::uint64_t> keys(50, 42);
  index.build(keys);
  ASSERT_EQ(index.unique_keys().size(), 1u);
  for (std::uint32_t slot : index.remap()) EXPECT_EQ(slot, 0u);
}

TEST(KeyIndexTest, EmptyListYieldsEmptyIndex) {
  KeyIndex index;
  index.build({});
  EXPECT_TRUE(index.unique_keys().empty());
  EXPECT_TRUE(index.remap().empty());
}

TEST(KeyIndexTest, ReusedIndexForgetsPreviousBuild) {
  KeyIndex index;
  std::vector<std::uint64_t> first = {5, 5, 6};
  index.build(first);
  std::vector<std::uint64_t> second = {2, 9};
  index.build(second);
  ASSERT_EQ(index.unique_keys().size(), 2u);
  EXPECT_EQ(index.unique_keys()[0], 2u);
  EXPECT_EQ(index.unique_keys()[1], 9u);
}

TEST(KeyIndexTest, DedupedGatherIsByteIdenticalOnDuplicateHeavyList) {
  // Acceptance criterion: fetching the unique keys once and expanding
  // through the remap reproduces byte-for-byte what per-reference
  // get_rows returns on a duplicate-heavy key list.
  const std::uint32_t width = 5;
  SimRdmaDkv store(200, width, 4, sim::NetworkModel{}, sim::ComputeModel{});
  rng::Xoshiro256 init_rng(3);
  std::vector<float> row(width);
  for (std::uint64_t v = 0; v < 200; ++v) {
    for (float& x : row) {
      x = static_cast<float>(init_rng.next_double() * 1e6);
    }
    store.init_row(v, row);
  }

  rng::Xoshiro256 rng(17);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.next_below(40));

  std::vector<float> direct(keys.size() * width);
  store.get_rows(1, keys, direct);

  KeyIndex index;
  index.build(keys);
  EXPECT_LT(index.unique_keys().size(), keys.size());  // duplicate-heavy
  std::vector<float> unique_rows(index.unique_keys().size() * width);
  store.get_rows(1, index.unique_keys(), unique_rows);
  std::vector<float> expanded(keys.size() * width);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::copy_n(unique_rows.data() + index.remap()[i] * width, width,
                expanded.data() + i * width);
  }
  ASSERT_EQ(std::memcmp(direct.data(), expanded.data(),
                        direct.size() * sizeof(float)),
            0);
}

TEST(KeyIndexTest, DedupedFetchCostsLessOnDuplicateHeavyList) {
  SimRdmaDkv store(200, 64, 8, sim::NetworkModel{}, sim::ComputeModel{},
                   /*phantom=*/true);
  rng::Xoshiro256 rng(23);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 400; ++i) keys.push_back(rng.next_below(50));
  KeyIndex index;
  index.build(keys);
  EXPECT_LT(store.read_cost_keys(0, index.unique_keys()),
            store.read_cost_keys(0, keys));
}

}  // namespace
}  // namespace scd::dkv
