#include "dkv/sim_rdma_dkv.h"

#include <gtest/gtest.h>

#include "random/xoshiro.h"
#include "util/error.h"

namespace scd::dkv {
namespace {

sim::NetworkModel net() {
  sim::NetworkModel n;
  n.collective_skew_s = 0.0;
  return n;
}

sim::ComputeModel node() { return sim::ComputeModel{}; }

class RdmaRoundTripTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RdmaRoundTripTest, RandomRoundTripAcrossShards) {
  const unsigned shards = GetParam();
  SimRdmaDkv store(97, 5, shards, net(), node());
  rng::Xoshiro256 rng(shards);
  // Write every row from a rotating requester, read back from another.
  std::vector<float> row(5);
  for (std::uint64_t key = 0; key < 97; ++key) {
    for (int i = 0; i < 5; ++i) {
      row[static_cast<std::size_t>(i)] = static_cast<float>(key * 10 + static_cast<std::uint64_t>(i));
    }
    std::vector<std::uint64_t> keys = {key};
    store.put_rows(static_cast<unsigned>(key % shards), keys, row);
  }
  std::vector<float> out(5);
  for (std::uint64_t key = 0; key < 97; ++key) {
    std::vector<std::uint64_t> keys = {key};
    store.get_rows(static_cast<unsigned>((key + 1) % shards), keys, out);
    EXPECT_EQ(out[0], static_cast<float>(key * 10));
    EXPECT_EQ(out[4], static_cast<float>(key * 10 + 4));
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, RdmaRoundTripTest,
                         ::testing::Values(1u, 2u, 7u, 64u));

TEST(RdmaDkvTest, LocalRowsCostLessThanRemote) {
  SimRdmaDkv store(64, 128, 4, net(), node());
  const double local = store.read_cost(0, 16, 0);
  const double remote = store.read_cost(0, 0, 16);
  EXPECT_LT(local, remote);
}

TEST(RdmaDkvTest, GetRowsChargesByActualLocality) {
  SimRdmaDkv store(100, 4, 4, net(), node());
  for (std::uint64_t v = 0; v < 100; ++v) {
    store.init_row(v, std::vector<float>(4, 1.0f));
  }
  // Shard 0 owns rows [0, 25); all-local batch vs all-remote batch.
  std::vector<std::uint64_t> local_keys = {0, 5, 10};
  std::vector<std::uint64_t> remote_keys = {30, 60, 90};
  std::vector<float> out(12);
  const double t_local = store.get_rows(0, local_keys, out);
  const double t_remote = store.get_rows(0, remote_keys, out);
  EXPECT_DOUBLE_EQ(t_local, store.read_cost(0, 3, 0));
  EXPECT_DOUBLE_EQ(t_remote, store.read_cost(0, 0, 3));
  EXPECT_LT(t_local, t_remote);
}

TEST(RdmaDkvTest, RemoteFractionMatchesFormula) {
  SimRdmaDkv store(100, 4, 5, net(), node());
  EXPECT_DOUBLE_EQ(store.remote_fraction(), 0.8);
}

TEST(RdmaDkvTest, CostGrowsWithClusterCongestion) {
  SimRdmaDkv small(1000, 64, 2, net(), node());
  SimRdmaDkv large(1000, 64, 64, net(), node());
  EXPECT_LT(small.read_cost(0, 0, 100), large.read_cost(0, 0, 100));
}

TEST(RdmaDkvTest, PhantomAnswersCostsButHoldsNoData) {
  SimRdmaDkv store(1u << 30, 12289, 64, net(), node(), /*phantom=*/true);
  EXPECT_TRUE(store.phantom());
  EXPECT_GT(store.read_cost(0, 100, 6300), 0.0);
  std::vector<std::uint64_t> keys = {0};
  std::vector<float> out(12289);
  EXPECT_THROW(store.get_rows(0, keys, out), scd::UsageError);
  EXPECT_THROW(store.init_row(0, out), scd::UsageError);
}

TEST(RdmaDkvTest, PhantomAndRealCostsAgree) {
  SimRdmaDkv real(1000, 65, 8, net(), node());
  SimRdmaDkv phantom(1000, 65, 8, net(), node(), /*phantom=*/true);
  EXPECT_DOUBLE_EQ(real.read_cost(3, 10, 70), phantom.read_cost(3, 10, 70));
  EXPECT_DOUBLE_EQ(real.write_cost(3, 10, 70),
                   phantom.write_cost(3, 10, 70));
}

// ---- request coalescing -------------------------------------------------

TEST(RdmaDkvTest, GetRowsChargesKeyedCoalescedCost) {
  SimRdmaDkv store(100, 4, 4, net(), node());
  for (std::uint64_t v = 0; v < 100; ++v) {
    store.init_row(v, std::vector<float>(4, 1.0f));
  }
  std::vector<std::uint64_t> keys = {30, 31, 32, 60, 61, 90, 5};
  std::vector<float> out(keys.size() * 4);
  EXPECT_DOUBLE_EQ(store.get_rows(0, keys, out),
                   store.read_cost_keys(0, keys));
  EXPECT_DOUBLE_EQ(store.put_rows(0, keys, out),
                   store.write_cost_keys(0, keys));
}

TEST(RdmaDkvTest, CoalescedCostAtMostPerRowCost) {
  // The keyed (per-shard-coalesced) cost can never exceed the seed's
  // one-request-per-row cost for the same key multiset.
  SimRdmaDkv store(1000, 65, 8, net(), node());
  const sim::NetworkModel n = net();
  rng::Xoshiro256 rng(7);
  const std::uint64_t row_bytes = 65 * sizeof(float);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 200; ++i) keys.push_back(rng.next_below(1000));
    std::uint64_t local = 0;
    for (std::uint64_t key : keys) {
      if (store.partition().owner(key) == 2u) ++local;
    }
    const std::uint64_t remote = keys.size() - local;
    const double per_row =
        node().local_bytes_time(local * row_bytes) +
        n.dkv_batch_time(remote, remote * row_bytes, remote * row_bytes, 8);
    EXPECT_LE(store.read_cost_keys(2, keys), per_row);
  }
}

TEST(RdmaDkvTest, CoalescedCostGrowsWithShardsContacted) {
  // Same local/remote counts, more distinct destinations -> more
  // per-message overhead.
  SimRdmaDkv store(100, 4, 4, net(), node());
  // Shard 0 asks: 3 rows all on shard 1 vs spread over shards 1..3.
  std::vector<std::uint64_t> one_shard = {30, 31, 32};
  std::vector<std::uint64_t> three_shards = {30, 60, 90};
  EXPECT_LT(store.read_cost_keys(0, one_shard),
            store.read_cost_keys(0, three_shards));
}

TEST(RdmaDkvTest, DuplicateKeysChargeFullTraffic) {
  // The store itself does NOT dedup — every reference in the batch is
  // transferred (dedup is the sampler's KeyIndex stage, tested there).
  SimRdmaDkv store(100, 4, 4, net(), node());
  for (std::uint64_t v = 0; v < 100; ++v) {
    store.init_row(v, std::vector<float>(4, 1.0f));
  }
  std::vector<std::uint64_t> once = {60};
  std::vector<std::uint64_t> thrice = {60, 60, 60};
  std::vector<float> out(12);
  EXPECT_GT(store.get_rows(0, thrice, out),
            store.get_rows(0, once, std::span<float>(out.data(), 4)));
}

TEST(RdmaDkvTest, PhantomAndRealKeyedCostsAgree) {
  // Acceptance criterion: identical key multisets cost the same in
  // real and cost-only mode — the coalescing layer needs no data.
  SimRdmaDkv real(1000, 65, 8, net(), node());
  SimRdmaDkv phantom(1000, 65, 8, net(), node(), /*phantom=*/true);
  rng::Xoshiro256 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 150; ++i) keys.push_back(rng.next_below(1000));
    const unsigned requester = static_cast<unsigned>(trial % 8);
    EXPECT_DOUBLE_EQ(real.read_cost_keys(requester, keys),
                     phantom.read_cost_keys(requester, keys));
    EXPECT_DOUBLE_EQ(real.write_cost_keys(requester, keys),
                     phantom.write_cost_keys(requester, keys));
  }
}

TEST(RdmaDkvTest, WidthMismatchThrows) {
  SimRdmaDkv store(10, 4, 2, net(), node());
  EXPECT_THROW(store.init_row(0, std::vector<float>(3, 0.0f)),
               scd::UsageError);
}

}  // namespace
}  // namespace scd::dkv
