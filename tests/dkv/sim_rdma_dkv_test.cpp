#include "dkv/sim_rdma_dkv.h"

#include <gtest/gtest.h>

#include "random/xoshiro.h"
#include "util/error.h"

namespace scd::dkv {
namespace {

sim::NetworkModel net() {
  sim::NetworkModel n;
  n.collective_skew_s = 0.0;
  return n;
}

sim::ComputeModel node() { return sim::ComputeModel{}; }

class RdmaRoundTripTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RdmaRoundTripTest, RandomRoundTripAcrossShards) {
  const unsigned shards = GetParam();
  SimRdmaDkv store(97, 5, shards, net(), node());
  rng::Xoshiro256 rng(shards);
  // Write every row from a rotating requester, read back from another.
  std::vector<float> row(5);
  for (std::uint64_t key = 0; key < 97; ++key) {
    for (int i = 0; i < 5; ++i) {
      row[static_cast<std::size_t>(i)] = static_cast<float>(key * 10 + static_cast<std::uint64_t>(i));
    }
    std::vector<std::uint64_t> keys = {key};
    store.put_rows(static_cast<unsigned>(key % shards), keys, row);
  }
  std::vector<float> out(5);
  for (std::uint64_t key = 0; key < 97; ++key) {
    std::vector<std::uint64_t> keys = {key};
    store.get_rows(static_cast<unsigned>((key + 1) % shards), keys, out);
    EXPECT_EQ(out[0], static_cast<float>(key * 10));
    EXPECT_EQ(out[4], static_cast<float>(key * 10 + 4));
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, RdmaRoundTripTest,
                         ::testing::Values(1u, 2u, 7u, 64u));

TEST(RdmaDkvTest, LocalRowsCostLessThanRemote) {
  SimRdmaDkv store(64, 128, 4, net(), node());
  const double local = store.read_cost(0, 16, 0);
  const double remote = store.read_cost(0, 0, 16);
  EXPECT_LT(local, remote);
}

TEST(RdmaDkvTest, GetRowsChargesByActualLocality) {
  SimRdmaDkv store(100, 4, 4, net(), node());
  for (std::uint64_t v = 0; v < 100; ++v) {
    store.init_row(v, std::vector<float>(4, 1.0f));
  }
  // Shard 0 owns rows [0, 25); all-local batch vs all-remote batch.
  std::vector<std::uint64_t> local_keys = {0, 5, 10};
  std::vector<std::uint64_t> remote_keys = {30, 60, 90};
  std::vector<float> out(12);
  const double t_local = store.get_rows(0, local_keys, out);
  const double t_remote = store.get_rows(0, remote_keys, out);
  EXPECT_DOUBLE_EQ(t_local, store.read_cost(0, 3, 0));
  EXPECT_DOUBLE_EQ(t_remote, store.read_cost(0, 0, 3));
  EXPECT_LT(t_local, t_remote);
}

TEST(RdmaDkvTest, RemoteFractionMatchesFormula) {
  SimRdmaDkv store(100, 4, 5, net(), node());
  EXPECT_DOUBLE_EQ(store.remote_fraction(), 0.8);
}

TEST(RdmaDkvTest, CostGrowsWithClusterCongestion) {
  SimRdmaDkv small(1000, 64, 2, net(), node());
  SimRdmaDkv large(1000, 64, 64, net(), node());
  EXPECT_LT(small.read_cost(0, 0, 100), large.read_cost(0, 0, 100));
}

TEST(RdmaDkvTest, PhantomAnswersCostsButHoldsNoData) {
  SimRdmaDkv store(1u << 30, 12289, 64, net(), node(), /*phantom=*/true);
  EXPECT_TRUE(store.phantom());
  EXPECT_GT(store.read_cost(0, 100, 6300), 0.0);
  std::vector<std::uint64_t> keys = {0};
  std::vector<float> out(12289);
  EXPECT_THROW(store.get_rows(0, keys, out), scd::UsageError);
  EXPECT_THROW(store.init_row(0, out), scd::UsageError);
}

TEST(RdmaDkvTest, PhantomAndRealCostsAgree) {
  SimRdmaDkv real(1000, 65, 8, net(), node());
  SimRdmaDkv phantom(1000, 65, 8, net(), node(), /*phantom=*/true);
  EXPECT_DOUBLE_EQ(real.read_cost(3, 10, 70), phantom.read_cost(3, 10, 70));
  EXPECT_DOUBLE_EQ(real.write_cost(3, 10, 70),
                   phantom.write_cost(3, 10, 70));
}

TEST(RdmaDkvTest, WidthMismatchThrows) {
  SimRdmaDkv store(10, 4, 2, net(), node());
  EXPECT_THROW(store.init_row(0, std::vector<float>(3, 0.0f)),
               scd::UsageError);
}

}  // namespace
}  // namespace scd::dkv
