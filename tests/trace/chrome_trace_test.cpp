#include "trace/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd::trace {
namespace {

/// Count non-overlapping occurrences of `needle` in `text`.
std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TraceRecorder two_lane_recorder() {
  TraceRecorder rec(2);
  rec.set_lane_name(0, "rank 0 (master)");
  rec.set_lane_name(1, "rank 1 (worker 0)");
  rec.record_span(0, Stage::kDrawMinibatch, 0.0, 1.0, 0);
  rec.record_span(0, Stage::kBarrierWait, 1.0, 3.0, 0);
  rec.record_span(1, Stage::kDeployMinibatch, 0.5, 1.5, 0);
  rec.record_span(1, Stage::kUpdatePhi, 1.5, 3.0, 0);
  return rec;
}

TEST(ChromeTraceTest, EventsAreBalancedAndMonotonePerLane) {
  const TraceRecorder rec = two_lane_recorder();
  const std::string json = chrome_trace_json(rec);

  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 4u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 4u);
  for (unsigned tid : {0u, 1u}) {
    std::vector<double> ts;
    {
      SCOPED_TRACE(tid);
      std::istringstream lines(json);
      std::string line;
      const std::string tid_key = "\"tid\":" + std::to_string(tid) + ",";
      while (std::getline(lines, line)) {
        if (line.find("\"ph\":\"M\"") != std::string::npos) continue;
        if (line.find(tid_key) == std::string::npos) continue;
        const std::size_t pos = line.find("\"ts\":");
        ASSERT_NE(pos, std::string::npos) << line;
        ts.push_back(std::stod(line.substr(pos + 5)));
      }
    }
    ASSERT_EQ(ts.size(), 4u);
    for (std::size_t i = 1; i < ts.size(); ++i) {
      EXPECT_LE(ts[i - 1], ts[i]) << "lane " << tid << " event " << i;
    }
  }
}

TEST(ChromeTraceTest, MetadataNamesProcessAndLanes) {
  const std::string json = chrome_trace_json(two_lane_recorder());
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"thread_name\""), 2u);
  EXPECT_NE(json.find("rank 1 (worker 0)"), std::string::npos);
}

TEST(ChromeTraceTest, NestedSpansEmitProperlyNestedEvents) {
  TraceRecorder rec(1);
  // Inner closes before outer is appended (RAII order); the exporter
  // must re-sort into outer-B, inner-B, inner-E, outer-E.
  rec.record_span(0, Stage::kUpdateBetaTheta, 1.0, 2.0, 0);  // inner
  rec.record_span(0, Stage::kRecovery, 0.0, 3.0, 0);         // outer
  const std::string json = chrome_trace_json(rec);
  const std::size_t outer_b = json.find("\"name\":\"recovery\",\"cat\"");
  const std::size_t inner_b =
      json.find("\"name\":\"update_beta_theta\",\"cat\"");
  const std::size_t inner_e =
      json.find("{\"name\":\"update_beta_theta\",\"ph\":\"E\"");
  const std::size_t outer_e = json.find("{\"name\":\"recovery\",\"ph\":\"E\"");
  ASSERT_NE(outer_b, std::string::npos);
  ASSERT_NE(inner_b, std::string::npos);
  ASSERT_NE(inner_e, std::string::npos);
  ASSERT_NE(outer_e, std::string::npos);
  EXPECT_LT(outer_b, inner_b);
  EXPECT_LT(inner_b, inner_e);
  EXPECT_LT(inner_e, outer_e);
}

TEST(ChromeTraceTest, TimestampsAreVirtualMicroseconds) {
  TraceRecorder rec(1);
  rec.record_span(0, Stage::kSetup, 0.5, 1.0, 0);  // seconds
  const std::string json = chrome_trace_json(rec);
  EXPECT_NE(json.find("\"ts\":500000.000000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000000.000000"), std::string::npos);
}

TEST(ChromeTraceTest, WriteToFileRoundTripsAndBadPathThrows) {
  const TraceRecorder rec = two_lane_recorder();
  const std::string path =
      ::testing::TempDir() + "/scd_chrome_trace_test.json";
  write_chrome_trace(rec, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), chrome_trace_json(rec));
  std::remove(path.c_str());

  EXPECT_THROW(write_chrome_trace(rec, "/nonexistent-dir/trace.json"),
               scd::Error);
}

}  // namespace
}  // namespace scd::trace
