#include "trace/metrics.h"

#include <gtest/gtest.h>

namespace scd::trace {
namespace {

TEST(MetricsTest, BuiltinCountersAreRegisteredInOrder) {
  MetricsRegistry reg(2);
  ASSERT_EQ(reg.num_counters(), kNumMetrics);
  for (std::size_t i = 0; i < kNumMetrics; ++i) {
    EXPECT_EQ(reg.counter_name(i), metric_name(static_cast<Metric>(i)));
  }
  EXPECT_STREQ(metric_name(Metric::kDkvHits), "dkv_hits");
  EXPECT_STREQ(metric_name(Metric::kRecoveries), "recoveries");
}

TEST(MetricsTest, CountersArePerRankWithTotals) {
  MetricsRegistry reg(3);
  reg.count(Metric::kMessagesSent, 0);
  reg.count(Metric::kMessagesSent, 2, 4);
  EXPECT_EQ(reg.counter(Metric::kMessagesSent, 0), 1u);
  EXPECT_EQ(reg.counter(Metric::kMessagesSent, 1), 0u);
  EXPECT_EQ(reg.counter(Metric::kMessagesSent, 2), 4u);
  EXPECT_EQ(reg.counter_total(Metric::kMessagesSent), 5u);
  EXPECT_EQ(reg.counter_total(Metric::kBytesSent), 0u);
}

TEST(MetricsTest, CustomInstrumentsGetDenseIds) {
  MetricsRegistry reg(2);
  const auto c = reg.add_counter("cache_probes");
  EXPECT_EQ(c, kNumMetrics);  // built-ins occupy [0, kNumMetrics)
  reg.count(c, 1, 7);
  EXPECT_EQ(reg.counter(c, 1), 7u);
  EXPECT_EQ(reg.counter_name(c), "cache_probes");

  const auto g = reg.add_gauge("queue_depth");
  reg.set_gauge(g, 0, 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge(g, 0), 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge(g, 1), 0.0);
}

TEST(MetricsTest, HistogramUsesLog2Buckets) {
  MetricsRegistry reg(2);
  const auto h = reg.add_histogram("payload_bytes");
  reg.observe(h, 0, 0.5);   // < 1        -> bucket 0
  reg.observe(h, 0, 1.0);   // [1, 2)     -> bucket 1
  reg.observe(h, 1, 3.0);   // [2, 4)     -> bucket 2
  reg.observe(h, 1, 1024);  // [512,1024] -> bucket 11
  EXPECT_EQ(reg.histogram_bucket(h, 0), 1u);
  EXPECT_EQ(reg.histogram_bucket(h, 1), 1u);
  EXPECT_EQ(reg.histogram_bucket(h, 2), 1u);
  EXPECT_EQ(reg.histogram_bucket(h, 11), 1u);
  EXPECT_EQ(reg.histogram_count(h), 4u);
}

TEST(MetricsTest, ClearZeroesCellsButKeepsInstruments) {
  MetricsRegistry reg(2);
  const auto h = reg.add_histogram("h");
  reg.count(Metric::kDkvBatches, 1, 9);
  reg.observe(h, 0, 8.0);
  reg.clear();
  EXPECT_EQ(reg.counter_total(Metric::kDkvBatches), 0u);
  EXPECT_EQ(reg.histogram_count(h), 0u);
  EXPECT_EQ(reg.num_counters(), kNumMetrics + 0u);
  reg.count(Metric::kDkvBatches, 0);  // still usable after clear
  EXPECT_EQ(reg.counter_total(Metric::kDkvBatches), 1u);
}

TEST(MetricsTest, ToJsonSerializesNonZeroCountersAsRowObjects) {
  MetricsRegistry reg(2);
  // Empty registry: an empty-but-valid JSON array, so consumers can
  // embed it unconditionally.
  EXPECT_EQ(reg.to_json(), "[\n  ]");
  reg.count(Metric::kDkvHits, 0, 3);
  reg.count(Metric::kDkvHits, 1, 4);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"metric\": \"dkv_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"min_rank\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"max_rank\": 4"), std::string::npos);
  EXPECT_EQ(json.find("messages_sent"), std::string::npos);
  // Deterministic: serializing the same registry twice is byte-equal.
  EXPECT_EQ(json, reg.to_json());
}

TEST(MetricsTest, TableListsOnlyNonZeroCounters) {
  MetricsRegistry reg(2);
  EXPECT_EQ(reg.table().num_rows(), 0u);
  reg.count(Metric::kDkvHits, 0, 3);
  reg.count(Metric::kDkvMisses, 1, 2);
  const Table t = reg.table();
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("dkv_hits"), std::string::npos);
  EXPECT_NE(ascii.find("dkv_misses"), std::string::npos);
  EXPECT_EQ(ascii.find("messages_sent"), std::string::npos);
}

}  // namespace
}  // namespace scd::trace
