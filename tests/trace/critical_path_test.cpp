#include "trace/critical_path.h"

#include <gtest/gtest.h>

#include "core/distributed_sampler.h"
#include "sim/cluster.h"

namespace scd::trace {
namespace {

// Hand-checkable 2-rank fixture:
//
//   lane 0 (master): draw [0,1] --msg--> barrier_wait [1,4]
//   lane 1 (worker): setup [0,0.5] deploy [0.5,1.5] update_phi [1.5,5]
//
// The message posts at t=1.0 and arrives at t=1.5, gating the worker
// (its clock was at 0.5). Longest chain, walked backwards from the
// horizon at t=5: update_phi [1.5,5] -> network [1.0,1.5] -> draw
// [0,1] = 3.5 + 0.5 + 1.0 = 5.0 = total virtual time.
TEST(CriticalPathTest, TwoRankMessageChainTilesTotalTime) {
  TraceRecorder rec(2);
  rec.record_span(0, Stage::kDrawMinibatch, 0.0, 1.0);
  rec.record_span(0, Stage::kBarrierWait, 1.0, 4.0);
  rec.record_span(1, Stage::kSetup, 0.0, 0.5);
  rec.record_span(1, Stage::kDeployMinibatch, 0.5, 1.5);
  rec.record_span(1, Stage::kUpdatePhi, 1.5, 5.0);
  rec.record_recv(1, /*from=*/0, /*sent_s=*/1.0, /*arrival_s=*/1.5,
                  /*wait_from_s=*/0.5, /*bytes=*/256);

  const CriticalPathReport report = analyze_critical_path(rec);
  EXPECT_DOUBLE_EQ(report.total_s, 5.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUpdatePhi), 3.5);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kNetwork), 0.5);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kDrawMinibatch), 1.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kBarrierWait), 0.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUntracked), 0.0);

  double sum = 0.0;
  for (double s : report.on_path_s) sum += s;
  EXPECT_NEAR(sum, report.total_s, 1e-12) << "buckets must tile [0, total]";

  // The chain itself, latest first.
  ASSERT_EQ(report.steps.size(), 3u);
  EXPECT_EQ(report.steps[0].lane, 1u);
  EXPECT_EQ(report.steps[0].stage, Stage::kUpdatePhi);
  EXPECT_EQ(report.steps[1].stage, Stage::kNetwork);
  EXPECT_EQ(report.steps[2].lane, 0u);
  EXPECT_EQ(report.steps[2].stage, Stage::kDrawMinibatch);

  // Slack: the master's 3s of barrier_wait is entirely off-path.
  EXPECT_DOUBLE_EQ(report.slack(Stage::kBarrierWait), 3.0);
  EXPECT_DOUBLE_EQ(report.slack(Stage::kUpdatePhi), 0.0);
}

// A collective gated by the last rank in: the chain crosses to the
// gating rank at its entry time and charges the gather interval to the
// kCollective bucket.
TEST(CriticalPathTest, CollectiveEdgeCrossesToGatingRank) {
  TraceRecorder rec(2);
  // lane 0 enters the collective at 1.0, lane 1 (gating) at 2.0; all
  // finish at 2.5. Lane 0 then runs update_pi to the horizon at 3.0.
  rec.record_span(0, Stage::kDrawMinibatch, 0.0, 1.0);
  rec.record_span(0, Stage::kBarrierWait, 1.0, 2.5);
  rec.record_span(0, Stage::kUpdatePi, 2.5, 3.0);
  rec.record_span(1, Stage::kUpdatePhi, 0.0, 2.0);
  rec.record_span(1, Stage::kBarrierWait, 2.0, 2.5);
  rec.record_collective(0, /*finish_s=*/2.5, /*entry_s=*/1.0,
                        /*max_entry_s=*/2.0, /*gating_rank=*/1,
                        /*bytes=*/64);
  rec.record_collective(1, /*finish_s=*/2.5, /*entry_s=*/2.0,
                        /*max_entry_s=*/2.0, /*gating_rank=*/1,
                        /*bytes=*/64);

  const CriticalPathReport report = analyze_critical_path(rec);
  EXPECT_DOUBLE_EQ(report.total_s, 3.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUpdatePi), 0.5);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kCollective), 0.5);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUpdatePhi), 2.0);
  double sum = 0.0;
  for (double s : report.on_path_s) sum += s;
  EXPECT_NEAR(sum, report.total_s, 1e-12);
  // The walk ends on the gating rank's lane.
  EXPECT_EQ(report.steps.back().lane, 1u);
}

TEST(CriticalPathTest, GapsAreAttributedToUntracked) {
  TraceRecorder rec(1);
  rec.record_span(0, Stage::kUpdatePhi, 1.0, 2.0);
  const CriticalPathReport report = analyze_critical_path(rec);
  EXPECT_DOUBLE_EQ(report.total_s, 2.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUpdatePhi), 1.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUntracked), 1.0);
}

TEST(CriticalPathTest, MessageThatWasAlreadyWaitingIsNotAnEdge) {
  // arrival <= wait_from: the receiver never stalled on the message, so
  // the chain stays on the receiving lane.
  TraceRecorder rec(2);
  rec.record_span(0, Stage::kDrawMinibatch, 0.0, 0.5);
  rec.record_span(1, Stage::kUpdatePhi, 0.0, 3.0);
  rec.record_recv(1, /*from=*/0, /*sent_s=*/0.5, /*arrival_s=*/1.0,
                  /*wait_from_s=*/2.0, /*bytes=*/64);
  const CriticalPathReport report = analyze_critical_path(rec);
  EXPECT_DOUBLE_EQ(report.total_s, 3.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUpdatePhi), 3.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kNetwork), 0.0);
}

TEST(CriticalPathTest, EmptyRecorderYieldsEmptyReport) {
  TraceRecorder rec(3);
  const CriticalPathReport report = analyze_critical_path(rec);
  EXPECT_DOUBLE_EQ(report.total_s, 0.0);
  EXPECT_TRUE(report.steps.empty());
}

TEST(CriticalPathTest, TableReportsSharesAndSlack) {
  TraceRecorder rec(1);
  rec.record_span(0, Stage::kUpdatePhi, 0.0, 4.0);
  const CriticalPathReport report = analyze_critical_path(rec);
  const std::string ascii = report.table().to_ascii();
  EXPECT_NE(ascii.find("update_phi"), std::string::npos);
  EXPECT_NE(ascii.find("100"), std::string::npos);  // 100% share
  EXPECT_EQ(ascii.find("perplexity"), std::string::npos);
}

// -- probe-sized degenerate traces ----------------------------------------
// The autotuner feeds the analyzer far smaller traces than the fixtures
// above: single-rank lanes, spans of zero length, and one-iteration
// cost-only runs. Each must come back tiled, not crash or leak time
// into the wrong bucket.

TEST(CriticalPathTest, SingleRankChainTilesWithoutCrossEdges) {
  TraceRecorder rec(1);
  rec.record_span(0, Stage::kSetup, 0.0, 0.5);
  rec.record_span(0, Stage::kDrawMinibatch, 0.5, 2.0);
  rec.record_span(0, Stage::kUpdateBetaTheta, 2.0, 3.0);
  const CriticalPathReport report = analyze_critical_path(rec);
  EXPECT_DOUBLE_EQ(report.total_s, 3.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kSetup), 0.5);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kDrawMinibatch), 1.5);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUpdateBetaTheta), 1.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kNetwork), 0.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kCollective), 0.0);
  double sum = 0.0;
  for (double s : report.on_path_s) sum += s;
  EXPECT_NEAR(sum, report.total_s, 1e-12);
}

TEST(CriticalPathTest, ZeroLengthSpansContributeNothingButDoNotBreak) {
  TraceRecorder rec(2);
  // An entirely zero-length lane 0 plus a lane 1 whose spans include
  // zero-length markers between real work.
  rec.record_span(0, Stage::kSetup, 0.0, 0.0);
  rec.record_span(1, Stage::kSetup, 0.0, 0.0);
  rec.record_span(1, Stage::kUpdatePhi, 0.0, 2.0);
  rec.record_span(1, Stage::kUpdatePi, 2.0, 2.0);
  rec.record_span(1, Stage::kUpdateBetaTheta, 2.0, 2.5);
  const CriticalPathReport report = analyze_critical_path(rec);
  EXPECT_DOUBLE_EQ(report.total_s, 2.5);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUpdatePhi), 2.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUpdateBetaTheta), 0.5);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUpdatePi), 0.0);
  EXPECT_DOUBLE_EQ(report.on_path(Stage::kUntracked), 0.0);
  double sum = 0.0;
  for (double s : report.on_path_s) sum += s;
  EXPECT_NEAR(sum, report.total_s, 1e-12);
}

TEST(CriticalPathTest, AllZeroHorizonYieldsEmptyChain) {
  TraceRecorder rec(2);
  rec.record_span(0, Stage::kSetup, 0.0, 0.0);
  rec.record_span(1, Stage::kSetup, 0.0, 0.0);
  const CriticalPathReport report = analyze_critical_path(rec);
  EXPECT_DOUBLE_EQ(report.total_s, 0.0);
  for (double s : report.on_path_s) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(CriticalPathTest, OneIterationCostOnlyProbeTilesTotalTime) {
  // The smallest trace the autotuner produces: one cost-only iteration
  // on a two-worker cluster. The buckets must still tile the run.
  sim::SimCluster::Config config;
  config.num_ranks = 3;
  sim::SimCluster cluster(config);
  trace::TraceRecorder rec(config.num_ranks);
  core::Hyper hyper;
  hyper.num_communities = 64;
  core::PhantomWorkload workload;
  workload.num_vertices = 100000;
  workload.avg_degree = 16.0;
  workload.minibatch_vertices = 256;
  workload.minibatch_pairs = 128;
  core::DistributedOptions options;
  options.base.eval_interval = 0;
  options.trace = &rec;
  core::DistributedSampler sampler(cluster, workload, hyper, options);
  const core::DistributedResult result = sampler.run(1);

  const CriticalPathReport report = analyze_critical_path(rec);
  EXPECT_GT(report.total_s, 0.0);
  EXPECT_NEAR(report.total_s, result.virtual_seconds, 1e-12);
  double sum = 0.0;
  for (double s : report.on_path_s) sum += s;
  EXPECT_NEAR(sum, report.total_s, 1e-9 * report.total_s);
  EXPECT_FALSE(report.steps.empty());
}

}  // namespace
}  // namespace scd::trace
