// End-to-end properties of tracing the distributed sampler:
//
//   * observer effect: a traced run is bit-identical to an untraced
//     one — same trajectory, same virtual times (the recorder samples
//     clocks, never advances them);
//   * completeness: every clock-advancing region is inside a span, so
//     the critical-path chain tiles [0, total] and its length equals
//     the run's total virtual time;
//   * the exported Chrome trace is balanced and the metrics registry
//     sees the traffic (conservation: bytes sent == bytes received).
#include <vector>

#include <gtest/gtest.h>

#include "core/distributed_sampler.h"
#include "fault/fault_plan.h"
#include "sim/cluster.h"
#include "tests/core/test_fixtures.h"
#include "trace/chrome_trace.h"
#include "trace/critical_path.h"
#include "trace/recorder.h"

namespace scd::core {
namespace {

using testing::small_planted_fixture;

constexpr unsigned kWorkers = 3;
constexpr std::uint64_t kIterations = 40;

DistributedResult run_sampler(trace::TraceRecorder* recorder,
                              bool pipeline = true,
                              const fault::FaultPlan* plan = nullptr,
                              PiMatrix* pi_out = nullptr) {
  auto f = small_planted_fixture(777, 150, 4, 80);
  f.options.eval_interval = 20;
  sim::SimCluster::Config config;
  config.num_ranks = kWorkers + 1;
  sim::SimCluster cluster(config);
  DistributedOptions options;
  options.base = f.options;
  options.pipeline = pipeline;
  options.chunk_vertices = 8;
  options.fault_plan = plan;
  options.trace = recorder;
  DistributedSampler dist(cluster, f.split->training(), f.split.get(),
                          f.hyper, options);
  const DistributedResult result = dist.run(kIterations);
  if (pi_out != nullptr) *pi_out = dist.snapshot_pi();
  return result;
}

TEST(TraceIntegrationTest, TracingDoesNotPerturbTheRun) {
  PiMatrix pi_off(1, 1);
  PiMatrix pi_on(1, 1);
  const DistributedResult off = run_sampler(nullptr, true, nullptr, &pi_off);
  trace::TraceRecorder recorder(kWorkers + 1);
  const DistributedResult on =
      run_sampler(&recorder, true, nullptr, &pi_on);

  EXPECT_EQ(on.virtual_seconds, off.virtual_seconds)
      << "tracing must not move any clock";
  ASSERT_EQ(on.history.size(), off.history.size());
  for (std::size_t i = 0; i < on.history.size(); ++i) {
    EXPECT_EQ(on.history[i].perplexity, off.history[i].perplexity);
    EXPECT_EQ(on.history[i].seconds, off.history[i].seconds);
  }
  ASSERT_EQ(pi_on.num_vertices(), pi_off.num_vertices());
  for (std::uint32_t v = 0; v < pi_on.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < pi_on.num_communities(); ++k) {
      ASSERT_EQ(pi_on.pi(v, k), pi_off.pi(v, k)) << "v=" << v;
    }
  }
  EXPECT_GT(recorder.total_spans(), 0u);
}

class TracePipelineTest : public ::testing::TestWithParam<bool> {};

// The headline analyzer property: with every clock-advancing region
// instrumented, the longest chain through the span DAG has exactly the
// run's total virtual time, and the per-stage buckets tile it.
TEST_P(TracePipelineTest, CriticalPathMatchesTotalVirtualTime) {
  trace::TraceRecorder recorder(kWorkers + 1);
  const DistributedResult result = run_sampler(&recorder, GetParam());

  EXPECT_NEAR(recorder.max_time(), result.virtual_seconds,
              1e-9 * result.virtual_seconds);
  const trace::CriticalPathReport report =
      trace::analyze_critical_path(recorder);
  EXPECT_NEAR(report.total_s, result.virtual_seconds,
              1e-9 * result.virtual_seconds);
  double sum = 0.0;
  for (double s : report.on_path_s) sum += s;
  EXPECT_NEAR(sum, report.total_s, 1e-6 * report.total_s);
  EXPECT_FALSE(report.steps.empty());
  // Instrumentation covers the hot loops: untracked time on the chain
  // is a rounding sliver, not a stage.
  EXPECT_LT(report.on_path(trace::Stage::kUntracked),
            0.01 * report.total_s);
}

INSTANTIATE_TEST_SUITE_P(Modes, TracePipelineTest, ::testing::Bool());

TEST(TraceIntegrationTest, MetricsSeeTheTraffic) {
  trace::TraceRecorder recorder(kWorkers + 1);
  run_sampler(&recorder);
  const trace::MetricsRegistry& m = recorder.metrics();
  using trace::Metric;
  EXPECT_GT(m.counter_total(Metric::kMessagesSent), 0u);
  EXPECT_GT(m.counter_total(Metric::kCollectives), 0u);
  EXPECT_GT(m.counter_total(Metric::kDkvRowsRead), 0u);
  EXPECT_GT(m.counter_total(Metric::kDkvRowsWritten), 0u);
  // Conservation: every posted byte is eventually received.
  EXPECT_EQ(m.counter_total(Metric::kBytesSent),
            m.counter_total(Metric::kBytesReceived));
  EXPECT_EQ(m.counter_total(Metric::kMessagesSent),
            m.counter_total(Metric::kMessagesReceived));
  // Only the master (lane 0) draws and deploys minibatches.
  EXPECT_GT(m.counter(Metric::kMessagesSent, 0), 0u);
  EXPECT_EQ(m.histogram_count(recorder.message_bytes_histogram()),
            m.counter_total(Metric::kMessagesSent));
}

TEST(TraceIntegrationTest, ChromeExportIsBalanced) {
  trace::TraceRecorder recorder(kWorkers + 1);
  run_sampler(&recorder);
  const std::string json = trace::chrome_trace_json(recorder);
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t pos = json.find("\"ph\":\"B\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"B\"", pos + 1)) {
    ++begins;
  }
  for (std::size_t pos = json.find("\"ph\":\"E\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"E\"", pos + 1)) {
    ++ends;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(begins, recorder.total_spans());
}

TEST(TraceIntegrationTest, RecoveryEventsAreCounted) {
  // Crash one worker mid-run: the fault-tolerant loop books the
  // recovery and the redone iterations to the metrics registry, and the
  // critical-path invariant still holds across the disruption.
  const DistributedResult clean = run_sampler(nullptr, false);

  fault::FaultPlan plan;
  plan.seed = 5;
  plan.heartbeat_timeout_s = clean.virtual_seconds / kIterations;
  plan.crashes.push_back({2, clean.virtual_seconds / 2.0});

  trace::TraceRecorder recorder(kWorkers + 1);
  const DistributedResult faulted = run_sampler(&recorder, false, &plan);
  ASSERT_EQ(faulted.crashed_ranks, std::vector<unsigned>{2});

  const trace::MetricsRegistry& m = recorder.metrics();
  EXPECT_EQ(m.counter_total(trace::Metric::kRecoveries), 1u);
  EXPECT_EQ(m.counter_total(trace::Metric::kRedoneIterations),
            faulted.redone_iterations);
  const trace::CriticalPathReport report =
      trace::analyze_critical_path(recorder);
  EXPECT_NEAR(report.total_s, faulted.virtual_seconds,
              1e-9 * faulted.virtual_seconds);
}

}  // namespace
}  // namespace scd::core
