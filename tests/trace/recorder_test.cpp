#include "trace/recorder.h"

#include <gtest/gtest.h>

namespace scd::trace {
namespace {

/// Minimal clock satisfying ScopedSpan's `double now() const` contract.
struct FakeClock {
  double t = 0.0;
  double now() const { return t; }
};

TEST(RecorderTest, RecordsSpansPerLane) {
  TraceRecorder rec(2);
  rec.record_span(0, Stage::kDrawMinibatch, 0.0, 1.0, 7);
  rec.record_span(1, Stage::kUpdatePhi, 0.5, 2.5, 7);
  ASSERT_EQ(rec.spans(0).size(), 1u);
  ASSERT_EQ(rec.spans(1).size(), 1u);
  EXPECT_EQ(rec.spans(0)[0].stage, Stage::kDrawMinibatch);
  EXPECT_DOUBLE_EQ(rec.spans(1)[0].end_s, 2.5);
  EXPECT_EQ(rec.spans(0)[0].iteration, 7u);
  EXPECT_EQ(rec.total_spans(), 2u);
  EXPECT_DOUBLE_EQ(rec.max_time(), 2.5);
}

TEST(RecorderTest, RecordsRecvAndCollectiveEvents) {
  TraceRecorder rec(2);
  rec.record_recv(1, /*from=*/0, /*sent_s=*/1.0, /*arrival_s=*/1.5,
                  /*wait_from_s=*/0.8, /*bytes=*/64);
  rec.record_collective(0, /*finish_s=*/3.0, /*entry_s=*/2.0,
                        /*max_entry_s=*/2.5, /*gating_rank=*/1,
                        /*bytes=*/128);
  ASSERT_EQ(rec.recvs(1).size(), 1u);
  EXPECT_EQ(rec.recvs(1)[0].from, 0u);
  EXPECT_DOUBLE_EQ(rec.recvs(1)[0].arrival_s, 1.5);
  ASSERT_EQ(rec.collectives(0).size(), 1u);
  EXPECT_EQ(rec.collectives(0)[0].gating_rank, 1u);
  EXPECT_DOUBLE_EQ(rec.collectives(0)[0].max_entry_s, 2.5);
}

TEST(RecorderTest, ScopedSpanRecordsOnDestruction) {
  TraceRecorder rec(1);
  FakeClock clock;
  clock.t = 1.0;
  {
    ScopedSpan<FakeClock> span(&rec, 0, Stage::kSampleNeighbors, clock, 3);
    clock.t = 4.0;
    EXPECT_TRUE(rec.spans(0).empty());  // only closes record
  }
  ASSERT_EQ(rec.spans(0).size(), 1u);
  EXPECT_EQ(rec.spans(0)[0].stage, Stage::kSampleNeighbors);
  EXPECT_DOUBLE_EQ(rec.spans(0)[0].begin_s, 1.0);
  EXPECT_DOUBLE_EQ(rec.spans(0)[0].end_s, 4.0);
  EXPECT_EQ(rec.spans(0)[0].iteration, 3u);
}

TEST(RecorderTest, NullRecorderSpanIsANoOp) {
  FakeClock clock;
  clock.t = 5.0;
  // Must not read the clock or crash; the disabled path is a branch.
  ScopedSpan<FakeClock> span(nullptr, 99, Stage::kUpdatePi, clock);
}

TEST(RecorderTest, LaneNamesAndClear) {
  TraceRecorder rec(2);
  rec.set_lane_name(0, "master");
  rec.set_lane_name(1, "worker 0");
  rec.record_span(1, Stage::kSetup, 0.0, 0.1);
  rec.clear();
  EXPECT_EQ(rec.total_spans(), 0u);
  EXPECT_DOUBLE_EQ(rec.max_time(), 0.0);
  EXPECT_EQ(rec.lane_name(0), "master");  // names survive clear
  EXPECT_EQ(rec.lane_name(1), "worker 0");
}

TEST(RecorderTest, ReserveMakesRecordingAllocationFree) {
  TraceRecorder rec(1);
  rec.reserve(/*spans_per_lane=*/100, /*events_per_lane=*/100);
  const SpanEvent* before = rec.spans(0).data();
  (void)before;
  for (int i = 0; i < 100; ++i) {
    rec.record_span(0, Stage::kUpdatePhi, i, i + 0.5);
    rec.record_recv(0, 0, 0.0, 1.0, 0.5, 8);
    rec.record_collective(0, 1.0, 0.5, 0.75, 0, 8);
  }
  // No reallocation: the backing array never moved.
  EXPECT_EQ(rec.spans(0).data(), before);
  EXPECT_EQ(rec.spans(0).size(), 100u);
}

TEST(RecorderTest, SummaryTableRollsUpPerStage) {
  TraceRecorder rec(2);
  rec.record_span(0, Stage::kDrawMinibatch, 0.0, 1.0);
  rec.record_span(1, Stage::kUpdatePhi, 0.0, 2.0);
  rec.record_span(1, Stage::kUpdatePhi, 2.0, 3.0);
  const std::string ascii = rec.summary_table().to_ascii();
  EXPECT_NE(ascii.find("draw_minibatch"), std::string::npos);
  EXPECT_NE(ascii.find("update_phi"), std::string::npos);
  EXPECT_EQ(ascii.find("perplexity"), std::string::npos)
      << "stages with no spans must not appear";
}

TEST(RecorderTest, MessageBytesHistogramIsRegistered) {
  TraceRecorder rec(1);
  rec.metrics().observe(rec.message_bytes_histogram(), 0, 4096.0);
  EXPECT_EQ(rec.metrics().histogram_count(rec.message_bytes_histogram()),
            1u);
}

}  // namespace
}  // namespace scd::trace
