#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "core/kernels_simd.h"
#include "core/parallel_sampler.h"
#include "core/perplexity.h"
#include "tests/core/test_fixtures.h"
#include "threading/thread_pool.h"

namespace scd::serve {
namespace {

using core::testing::small_planted_fixture;

core::Checkpoint random_checkpoint(std::uint32_t n, std::uint32_t k,
                                   std::uint64_t seed) {
  core::Checkpoint c;
  c.hyper.num_communities = k;
  c.hyper.delta = 1e-3;
  c.pi = core::PiMatrix(n, k);
  c.pi.init_random(seed);
  c.global = core::GlobalState(k);
  c.global.init_random(seed, c.hyper);
  return c;
}

std::unique_ptr<ServingSnapshots> make_store(core::Checkpoint checkpoint,
                                             std::uint32_t top_r = 4) {
  threading::ThreadPool pool(2);
  ServingIndexOptions options;
  options.top_r = top_r;
  return std::make_unique<ServingSnapshots>(
      build_serving_index(std::move(checkpoint), options, pool));
}

TEST(QueryEngineTest, ThrowsUntilFirstSnapshot) {
  ServingSnapshots snapshots;
  QueryEngine engine(snapshots);
  EXPECT_THROW(engine.link_probability(0, 1), scd::Error);
  EXPECT_THROW(engine.top_communities(0, 3), scd::Error);
  EXPECT_THROW(engine.community_members(0, 3), scd::Error);
}

TEST(QueryEngineTest, RangeChecked) {
  auto snapshots = make_store(random_checkpoint(20, 6, 1));
  QueryEngine engine(*snapshots);
  EXPECT_THROW(engine.top_communities(20, 3), scd::UsageError);
  EXPECT_THROW(engine.link_probability(0, 20), scd::UsageError);
  EXPECT_THROW(engine.community_members(6, 3), scd::UsageError);
}

// The serving contract: a served link probability is the SAME number the
// training-side perplexity evaluator computes for that pair — same
// kernel, same rows, same terms, bit for bit. Exercised on a real
// (briefly) trained model, not just random state.
TEST(QueryEngineTest, LinkProbabilityBitIdenticalToTrainingKernel) {
  auto fixture = small_planted_fixture();
  core::ParallelSampler sampler(fixture.split->training(),
                                fixture.split.get(), fixture.hyper,
                                fixture.options, 2);
  sampler.run(100);
  const core::Checkpoint checkpoint = sampler.checkpoint();

  // Training-side terms, refreshed exactly as the evaluator does it.
  core::LikelihoodTerms terms;
  terms.refresh(checkpoint.global.beta_all(), checkpoint.hyper.delta);

  auto snapshots = make_store(sampler.checkpoint());
  QueryEngine engine(*snapshots);
  for (const graph::HeldOutPair& p : fixture.split->pairs()) {
    const double trained = core::fast_pair_likelihood(
        checkpoint.pi.row(p.a), checkpoint.pi.row(p.b), terms, p.link);
    EXPECT_EQ(engine.pair_likelihood(p.a, p.b, p.link), trained);
    if (p.link) {
      EXPECT_EQ(engine.link_probability(p.a, p.b), trained);
    }
  }
}

TEST(QueryEngineTest, DeepTopQueryFallsBackExactly) {
  const std::uint32_t k = 12;
  auto snapshots = make_store(random_checkpoint(30, k, 7), /*top_r=*/4);
  QueryEngine engine(*snapshots);

  // k <= R: served from the index.
  const auto shallow = engine.top_communities(3, 4);
  // k > R: exact fallback over the dense row; its prefix must agree.
  const auto deep = engine.top_communities(3, k);
  ASSERT_EQ(deep.size(), k);
  for (std::size_t i = 0; i < shallow.size(); ++i) {
    EXPECT_EQ(deep[i].community, shallow[i].community);
    EXPECT_EQ(deep[i].weight, shallow[i].weight);
  }
  // Full ranking is weight-descending and covers every community once.
  std::vector<bool> seen(k, false);
  for (std::size_t i = 0; i < deep.size(); ++i) {
    EXPECT_FALSE(seen[deep[i].community]);
    seen[deep[i].community] = true;
    if (i > 0) EXPECT_LE(deep[i].weight, deep[i - 1].weight);
  }
  // Asks beyond K clamp.
  EXPECT_EQ(engine.top_communities(3, k + 50).size(), k);
}

TEST(QueryEngineTest, CommunityMembersClampsToListSize) {
  auto snapshots = make_store(random_checkpoint(40, 6, 3), /*top_r=*/6);
  QueryEngine engine(*snapshots);
  std::size_t full = 0;
  {
    const auto ref = snapshots->acquire();
    full = ref->members(2).size();
  }
  EXPECT_EQ(engine.community_members(2, 1'000'000).size(), full);
  if (full > 1) {
    EXPECT_EQ(engine.community_members(2, 1).size(), 1u);
  }
}

TEST(QueryEngineTest, QueriesFollowPublishedSnapshot) {
  threading::ThreadPool pool(2);
  ServingIndexOptions options;
  options.top_r = 4;
  ServingSnapshots snapshots(
      build_serving_index(random_checkpoint(20, 6, 1), options, pool));
  QueryEngine engine(snapshots);
  EXPECT_EQ(engine.epoch(), 1u);
  const double before = engine.link_probability(0, 1);

  snapshots.publish(
      build_serving_index(random_checkpoint(20, 6, 2), options, pool));
  EXPECT_EQ(engine.epoch(), 2u);
  // Different model state ⇒ (almost surely) different probability; the
  // point is the engine answers from the new snapshot without rebinding.
  EXPECT_NE(engine.link_probability(0, 1), before);
}

}  // namespace
}  // namespace scd::serve
