#include "serve/traffic.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/checkpoint.h"
#include "random/xoshiro.h"
#include "threading/thread_pool.h"

namespace scd::serve {
namespace {

core::Checkpoint random_checkpoint(std::uint32_t n, std::uint32_t k,
                                   std::uint64_t seed) {
  core::Checkpoint c;
  c.hyper.num_communities = k;
  c.hyper.delta = 1e-3;
  c.pi = core::PiMatrix(n, k);
  c.pi.init_random(seed);
  c.global = core::GlobalState(k);
  c.global.init_random(seed, c.hyper);
  return c;
}

std::unique_ptr<ServingSnapshots> make_store(std::uint32_t n,
                                             std::uint32_t k,
                                             std::uint64_t seed) {
  threading::ThreadPool pool(2);
  ServingIndexOptions options;
  options.top_r = 8;
  return std::make_unique<ServingSnapshots>(
      build_serving_index(random_checkpoint(n, k, seed), options, pool));
}

TEST(QueryScriptTest, ParsesOpsCommentsAndBlanks) {
  std::istringstream in(
      "# a comment\n"
      "top 3 5\n"
      "\n"
      "  link 1 2\n"
      "members 0 10\n");
  const auto queries = parse_query_script(in);
  ASSERT_EQ(queries.size(), 3u);
  EXPECT_EQ(queries[0].kind, QueryKind::kTop);
  EXPECT_EQ(queries[0].a, 3u);
  EXPECT_EQ(queries[0].b, 5u);
  EXPECT_EQ(queries[1].kind, QueryKind::kLink);
  EXPECT_EQ(queries[2].kind, QueryKind::kMembers);
}

TEST(QueryScriptTest, RejectsUnknownOpNamingLine) {
  std::istringstream in("top 1 2\nfrobnicate 3 4\n");
  try {
    parse_query_script(in);
    FAIL() << "expected DataError";
  } catch (const scd::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(QueryScriptTest, RejectsMissingOrNegativeOperands) {
  std::istringstream missing("top 1\n");
  EXPECT_THROW(parse_query_script(missing), scd::DataError);
  std::istringstream negative("link -1 2\n");
  EXPECT_THROW(parse_query_script(negative), scd::DataError);
  std::istringstream junk("members 1 x\n");
  EXPECT_THROW(parse_query_script(junk), scd::DataError);
}

TEST(QueryScriptTest, MissingFileRejected) {
  EXPECT_THROW(load_query_script("/no/such/queries.txt"), scd::DataError);
}

TEST(ZipfSamplerTest, SkewsTowardLowRanks) {
  ZipfSampler zipf(1000, 1.2);
  rng::Xoshiro256 rng(42);
  std::uint32_t head = 0;
  const int draws = 20'000;
  for (int i = 0; i < draws; ++i) {
    if (zipf(rng) < 10) ++head;
  }
  // Under Zipf(1.2) the top-10 ranks carry far more than their uniform
  // 1% share; require a conservative 30%.
  EXPECT_GT(head, draws * 30 / 100);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniformish) {
  ZipfSampler zipf(100, 0.0);
  rng::Xoshiro256 rng(7);
  std::uint32_t head = 0;
  const int draws = 20'000;
  for (int i = 0; i < draws; ++i) {
    if (zipf(rng) < 10) ++head;
  }
  // ~10% expected; allow wide slack.
  EXPECT_GT(head, draws * 5 / 100);
  EXPECT_LT(head, draws * 15 / 100);
}

TEST(RunTrafficTest, RequiresPublishedSnapshot) {
  ServingSnapshots empty;
  TrafficOptions options;
  options.ops = 10;
  EXPECT_THROW(run_traffic(empty, options), scd::UsageError);
}

TEST(RunTrafficTest, DeterministicChecksumAndCounts) {
  auto store = make_store(200, 8, 3);
  TrafficOptions options;
  options.ops = 4000;
  options.threads = 2;
  options.seed = 9;
  const TrafficReport a = run_traffic(*store, options);
  const TrafficReport b = run_traffic(*store, options);
  EXPECT_EQ(a.ops, 4000u);
  EXPECT_EQ(a.ops_top + a.ops_link + a.ops_members, a.ops);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.ops_top, b.ops_top);
  EXPECT_EQ(a.ops_link, b.ops_link);
  EXPECT_EQ(a.ops_members, b.ops_members);
  EXPECT_GT(a.qps, 0.0);
  EXPECT_GE(a.p95_us, a.p50_us);
  EXPECT_GE(a.p99_us, a.p95_us);
}

TEST(RunTrafficTest, SeedChangesTheStream) {
  auto store = make_store(200, 8, 3);
  TrafficOptions options;
  options.ops = 2000;
  options.threads = 2;
  options.seed = 1;
  const TrafficReport a = run_traffic(*store, options);
  options.seed = 2;
  const TrafficReport b = run_traffic(*store, options);
  EXPECT_NE(a.checksum, b.checksum);
}

// The refresh arm's contract: every requested refresh completes (the
// count is deterministic, not timing-dependent), no reader ever stalls,
// and with the exact fp32 codec the rebuilt index answers identically —
// so the checksum matches a read-only run of the same seed.
TEST(RunTrafficTest, RefreshesCompleteAndPreserveChecksum) {
  auto store = make_store(200, 8, 3);
  TrafficOptions options;
  options.ops = 6000;
  options.threads = 2;
  options.seed = 5;
  const TrafficReport steady = run_traffic(*store, options);

  options.refreshes = 3;
  options.refresh_codec = quant::RowCodec::kFloat32;
  const std::uint64_t epoch_before = store->epoch();
  const TrafficReport refreshed = run_traffic(*store, options);
  EXPECT_EQ(refreshed.refreshes, 3u);
  EXPECT_EQ(refreshed.end_epoch, epoch_before + 3);
  EXPECT_EQ(refreshed.reader_stalls, 0u);
  EXPECT_EQ(refreshed.checksum, steady.checksum);
}

// A lossy refresh codec still completes and keeps serving coherent
// answers — only the checksum may drift (quantized rows).
TEST(RunTrafficTest, LossyRefreshCodecServes) {
  auto store = make_store(150, 8, 4);
  TrafficOptions options;
  options.ops = 3000;
  options.threads = 2;
  options.refreshes = 2;
  options.refresh_codec = quant::RowCodec::kInt8;
  const TrafficReport report = run_traffic(*store, options);
  EXPECT_EQ(report.refreshes, 2u);
  EXPECT_EQ(report.reader_stalls, 0u);
  EXPECT_EQ(report.ops, 3000u);
}

}  // namespace
}  // namespace scd::serve
