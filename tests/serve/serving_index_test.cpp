#include "serve/serving_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/checkpoint.h"
#include "core/report.h"
#include "quant/row_codec.h"
#include "threading/thread_pool.h"

namespace scd::serve {
namespace {

core::Checkpoint make_checkpoint(std::uint32_t n, std::uint32_t k,
                                 std::uint64_t seed) {
  core::Checkpoint c;
  c.iteration = 77;
  c.hyper.num_communities = k;
  c.hyper.delta = 1e-3;
  c.pi = core::PiMatrix(n, k);
  c.pi.init_random(seed);
  c.global = core::GlobalState(k);
  c.global.init_random(seed, c.hyper);
  return c;
}

/// Reference ranking: weight-descending, community-ascending.
std::vector<TopEntry> brute_force_top(std::span<const float> row,
                                      std::uint32_t k, std::uint32_t r) {
  std::vector<TopEntry> all(k);
  for (std::uint32_t c = 0; c < k; ++c) all[c] = TopEntry{c, row[c]};
  std::sort(all.begin(), all.end(), [](const TopEntry& a, const TopEntry& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.community < b.community;
  });
  all.resize(std::min(r, k));
  return all;
}

TEST(ServingIndexTest, TopListsMatchBruteForce) {
  const std::uint32_t n = 64;
  const std::uint32_t k = 12;
  threading::ThreadPool pool(2);
  ServingIndexOptions options;
  options.top_r = 5;
  const ServingIndex index(make_checkpoint(n, k, 3), options, pool);
  ASSERT_EQ(index.top_r(), 5u);
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto expected = brute_force_top(index.pi_row(v), k, 5);
    const auto got = index.top_list(v);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].community, expected[i].community) << "v=" << v;
      EXPECT_EQ(got[i].weight, expected[i].weight) << "v=" << v;
    }
  }
}

TEST(ServingIndexTest, BuildIsThreadCountIndependent) {
  const std::uint32_t n = 150;
  const std::uint32_t k = 16;
  ServingIndexOptions options;
  options.top_r = 6;
  threading::ThreadPool pool1(1);
  threading::ThreadPool pool3(3);
  const ServingIndex a(make_checkpoint(n, k, 11), options, pool1);
  const ServingIndex b(make_checkpoint(n, k, 11), options, pool3);
  ASSERT_EQ(a.inverted_entries(), b.inverted_entries());
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto la = a.top_list(v);
    const auto lb = b.top_list(v);
    for (std::size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la[i].community, lb[i].community);
      ASSERT_EQ(la[i].weight, lb[i].weight);
    }
  }
  for (std::uint32_t c = 0; c < k; ++c) {
    const auto ma = a.members(c);
    const auto mb = b.members(c);
    ASSERT_EQ(ma.size(), mb.size());
    for (std::size_t i = 0; i < ma.size(); ++i) {
      ASSERT_EQ(ma[i].vertex, mb[i].vertex);
      ASSERT_EQ(ma[i].weight, mb[i].weight);
    }
  }
}

TEST(ServingIndexTest, InvertedListsRespectThresholdAndOrder) {
  const std::uint32_t n = 120;
  const std::uint32_t k = 10;
  threading::ThreadPool pool(2);
  ServingIndexOptions options;
  options.top_r = k;  // full window: membership decided by threshold alone
  options.membership_threshold = 0.2;
  const ServingIndex index(make_checkpoint(n, k, 5), options, pool);
  EXPECT_DOUBLE_EQ(index.membership_threshold(), 0.2);

  std::uint64_t listed = 0;
  for (std::uint32_t c = 0; c < k; ++c) {
    const auto members = index.members(c);
    listed += members.size();
    for (std::size_t i = 0; i < members.size(); ++i) {
      EXPECT_GE(members[i].weight, 0.2f);
      EXPECT_EQ(members[i].weight, index.pi_row(members[i].vertex)[c]);
      if (i > 0) {
        const bool ordered =
            members[i - 1].weight > members[i].weight ||
            (members[i - 1].weight == members[i].weight &&
             members[i - 1].vertex < members[i].vertex);
        EXPECT_TRUE(ordered) << "c=" << c << " i=" << i;
      }
    }
  }
  // Cross-check the total against a dense scan.
  std::uint64_t expected = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t c = 0; c < k; ++c) {
      if (index.pi_row(v)[c] >= 0.2f) ++expected;
    }
  }
  EXPECT_EQ(listed, expected);
  EXPECT_EQ(index.inverted_entries(), expected);
}

TEST(ServingIndexTest, AutoThresholdMatchesReportHeuristic) {
  threading::ThreadPool pool(1);
  const ServingIndex index(make_checkpoint(40, 8, 1), ServingIndexOptions{},
                           pool);
  EXPECT_DOUBLE_EQ(index.membership_threshold(),
                   core::default_membership_threshold(8));
}

TEST(ServingIndexTest, TopRClampsToK) {
  threading::ThreadPool pool(1);
  ServingIndexOptions options;
  options.top_r = 100;
  const ServingIndex index(make_checkpoint(30, 6, 2), options, pool);
  EXPECT_EQ(index.top_r(), 6u);
  EXPECT_EQ(index.top_list(0).size(), 6u);
}

TEST(ServingIndexTest, BuildsFromLossyCodecCheckpoint) {
  const auto original = make_checkpoint(50, 8, 9);
  const std::string bytes =
      core::checkpoint_to_bytes(original, quant::RowCodec::kInt8);
  threading::ThreadPool pool(2);
  ServingIndexOptions options;
  options.top_r = 4;
  const ServingIndex index(core::checkpoint_from_bytes(bytes), options,
                           pool);
  EXPECT_EQ(index.num_vertices(), 50u);
  EXPECT_EQ(index.iteration(), 77u);
  // Lists rank the *decoded* rows — exactly what pi_row exposes.
  for (std::uint32_t v = 0; v < 50; ++v) {
    const auto expected = brute_force_top(index.pi_row(v), 8, 4);
    const auto got = index.top_list(v);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].community, expected[i].community);
    }
  }
}

TEST(ServingIndexTest, IndexBytesAccountsForStructures) {
  threading::ThreadPool pool(1);
  const ServingIndex index(make_checkpoint(40, 8, 1), ServingIndexOptions{},
                           pool);
  // At minimum the dense rows + top lists are resident.
  EXPECT_GT(index.index_bytes(),
            std::size_t{40} * 9 * sizeof(float));
}

}  // namespace
}  // namespace scd::serve
