#include "sim/clock.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd::sim {
namespace {

TEST(ClockTest, StartsAtZeroAndAdvances) {
  SimClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  c.advance(0.25);
  EXPECT_DOUBLE_EQ(c.now(), 1.75);
}

TEST(ClockTest, AdvanceToOnlyMovesForward) {
  SimClock c;
  c.advance(2.0);
  c.advance_to(1.0);  // in the past: ignored
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  c.advance_to(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
}

TEST(ClockTest, NegativeAdvanceThrows) {
  SimClock c;
  EXPECT_THROW(c.advance(-0.1), scd::UsageError);
}

TEST(ClockTest, ResetReturnsToZero) {
  SimClock c;
  c.advance(5.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

}  // namespace
}  // namespace scd::sim
