#include "sim/network_model.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace scd::sim {
namespace {

TEST(NetworkModelTest, TransferTimeIsLatencyPlusWire) {
  NetworkModel net;
  net.latency_s = 2e-6;
  net.bandwidth_Bps = 1e9;
  EXPECT_DOUBLE_EQ(net.transfer_time(0), 2e-6);
  EXPECT_DOUBLE_EQ(net.transfer_time(1'000'000), 2e-6 + 1e-3);
}

TEST(NetworkModelTest, QperfEnvelopeApproachesLineRate) {
  const NetworkModel net;
  // Large payloads: effective bandwidth approaches the configured rate.
  const std::uint64_t big = 64ull << 20;
  const double bw = double(big) / qperf_transfer_time(net, big);
  EXPECT_NEAR(bw, net.bandwidth_Bps, 0.01 * net.bandwidth_Bps);
  // Tiny payloads: latency-dominated, far below line rate.
  const double bw_small = 256.0 / qperf_transfer_time(net, 256);
  EXPECT_LT(bw_small, 0.05 * net.bandwidth_Bps);
}

TEST(NetworkModelTest, DkvTrailsQperfAndConverges) {
  const NetworkModel net;
  // Single-request read of one payload, one node (no congestion).
  auto dkv_bw = [&](std::uint64_t bytes) {
    return double(bytes) / net.dkv_batch_time(1, bytes, bytes, 1);
  };
  auto qperf_bw = [&](std::uint64_t bytes) {
    return double(bytes) / qperf_transfer_time(net, bytes);
  };
  // Below 4 KiB the DKV clearly trails; by 64 KiB it is close.
  EXPECT_LT(dkv_bw(1024), 0.95 * qperf_bw(1024));
  EXPECT_GT(dkv_bw(64 * 1024), 0.90 * qperf_bw(64 * 1024));
}

TEST(NetworkModelTest, SpreadPenaltyKicksInAboveThreshold) {
  NetworkModel net;
  const std::uint64_t bytes = 1 << 20;
  const double t_small_ws = net.dkv_batch_time(1, bytes, bytes, 1);
  const double t_large_ws =
      net.dkv_batch_time(1, bytes, net.spread_threshold_bytes + 1, 1);
  EXPECT_GT(t_large_ws, t_small_ws);
}

TEST(NetworkModelTest, CongestionFactorShrinksWithClusterSize) {
  const NetworkModel net;
  EXPECT_DOUBLE_EQ(net.congestion_factor(1), 1.0);
  double prev = 1.0;
  for (unsigned c : {2u, 4u, 8u, 16u, 64u}) {
    const double f = net.congestion_factor(c);
    EXPECT_LT(f, prev);
    EXPECT_GT(f, 0.0);
    prev = f;
  }
  // Asymptote: 1 / (1 + strength).
  EXPECT_NEAR(net.congestion_factor(10000),
              1.0 / (1.0 + net.congestion_strength), 0.01);
}

TEST(NetworkModelTest, DkvBatchTimeMonotoneInEverything) {
  const NetworkModel net;
  const double base = net.dkv_batch_time(10, 100'000, 100'000, 8);
  EXPECT_GT(net.dkv_batch_time(20, 100'000, 100'000, 8), base);
  EXPECT_GT(net.dkv_batch_time(10, 200'000, 200'000, 8), base);
  EXPECT_GT(net.dkv_batch_time(10, 100'000, 100'000, 64), base);
  EXPECT_DOUBLE_EQ(net.dkv_batch_time(0, 0, 0, 8), 0.0);
}

TEST(NetworkModelTest, TreeDepthIsCeilLog2) {
  EXPECT_EQ(NetworkModel::tree_depth(1), 0u);
  EXPECT_EQ(NetworkModel::tree_depth(2), 1u);
  EXPECT_EQ(NetworkModel::tree_depth(3), 2u);
  EXPECT_EQ(NetworkModel::tree_depth(64), 6u);
  EXPECT_EQ(NetworkModel::tree_depth(65), 7u);
}

TEST(NetworkModelTest, CollectiveTimeGrowsWithClusterAndPayload) {
  NetworkModel net;
  net.collective_skew_s = 0.0;
  EXPECT_DOUBLE_EQ(net.collective_time(1, 1024), 0.0);
  EXPECT_LT(net.collective_time(4, 1024), net.collective_time(64, 1024));
  EXPECT_LT(net.collective_time(64, 0), net.collective_time(64, 1 << 20));
}

TEST(NetworkModelTest, CoalescedTimeSavesPerRequestOverheadOnly) {
  NetworkModel net;
  const std::uint64_t rows = 1000;
  const std::uint64_t bytes = rows * 4100;
  const std::uint64_t shards = 15;
  const double per_row = net.dkv_batch_time(rows, bytes, bytes, 16);
  const double coalesced = net.dkv_coalesced_time(shards, bytes, bytes, 16);
  // Coalescing amortizes request overhead but moves the same bytes.
  EXPECT_LT(coalesced, per_row);
  EXPECT_NEAR(per_row - coalesced,
              static_cast<double>(rows - shards) * net.dkv_request_overhead_s,
              1e-12);
  // Degenerate case: one message per row is the uncoalesced cost.
  EXPECT_DOUBLE_EQ(net.dkv_coalesced_time(rows, bytes, bytes, 16), per_row);
}

// The skew term models the OS-jitter/straggler variance every collective
// absorbs: paid exactly once per operation, additively, on top of the
// tree transfer — and never by the degenerate one-rank "collective".
TEST(NetworkModelTest, CollectiveSkewIsOneAdditiveTermPerOperation) {
  NetworkModel with_skew;
  NetworkModel no_skew;
  no_skew.collective_skew_s = 0.0;
  for (const unsigned cluster : {2u, 4u, 64u}) {
    for (const std::uint64_t bytes : {std::uint64_t{0}, std::uint64_t{1} << 20}) {
      EXPECT_DOUBLE_EQ(with_skew.collective_time(cluster, bytes),
                       no_skew.collective_time(cluster, bytes) +
                           with_skew.collective_skew_s)
          << "cluster=" << cluster << " bytes=" << bytes;
    }
  }
  // Independent of depth: doubling the cluster grows the tree term, not
  // the skew term (up to the rounding of the `+ skew` additions).
  const double delta_skew = with_skew.collective_time(64, 1024) -
                            with_skew.collective_time(4, 1024);
  const double delta_no_skew =
      no_skew.collective_time(64, 1024) - no_skew.collective_time(4, 1024);
  EXPECT_NEAR(delta_skew, delta_no_skew, 1e-15);
  // One rank: no communication, no skew.
  EXPECT_DOUBLE_EQ(with_skew.collective_time(1, 1 << 20), 0.0);
  // A pure barrier (0 bytes) still pays the full skew.
  EXPECT_GE(with_skew.collective_time(2, 0), with_skew.collective_skew_s);
}

TEST(NetworkModelTest, ValidationCatchesNonsense) {
  NetworkModel net;
  net.bandwidth_Bps = 0.0;
  EXPECT_THROW(net.validate(), scd::UsageError);
  NetworkModel net2;
  net2.spread_efficiency = 1.5;
  EXPECT_THROW(net2.validate(), scd::UsageError);
}

}  // namespace
}  // namespace scd::sim
