#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <atomic>

#include "util/error.h"

namespace scd::sim {
namespace {

SimCluster::Config small_config(unsigned ranks) {
  SimCluster::Config config;
  config.num_ranks = ranks;
  config.network.collective_skew_s = 0.0;
  return config;
}

TEST(ClusterTest, RunsEveryRankExactlyOnce) {
  SimCluster cluster(small_config(5));
  std::atomic<unsigned> mask{0};
  cluster.run([&](RankContext& ctx) {
    mask.fetch_or(1u << ctx.rank());
    EXPECT_EQ(ctx.num_ranks(), 5u);
  });
  EXPECT_EQ(mask.load(), 0b11111u);
}

TEST(ClusterTest, ChargeAdvancesClockAndStats) {
  SimCluster cluster(small_config(2));
  cluster.run([&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.charge(Phase::kUpdatePhi, 0.25);
      ctx.charge(Phase::kUpdatePhi, 0.25);
      ctx.charge(Phase::kLoadPi, 1.0);
    }
  });
  EXPECT_DOUBLE_EQ(cluster.clock(0).now(), 1.5);
  EXPECT_DOUBLE_EQ(cluster.stats(0).get(Phase::kUpdatePhi), 0.5);
  EXPECT_DOUBLE_EQ(cluster.stats(0).get(Phase::kLoadPi), 1.0);
  EXPECT_DOUBLE_EQ(cluster.max_clock(), 1.5);
}

TEST(ClusterTest, ChargeKernelScalesWithThreadModel) {
  SimCluster::Config config = small_config(1);
  config.compute.clock_hz = 1e9;
  config.compute.threads_per_node = 4;
  config.compute.thread_efficiency = 1.0;
  SimCluster cluster(config);
  cluster.run([&](RankContext& ctx) {
    ctx.charge_kernel(Phase::kUpdatePhi, 4e9, 1.0);  // 4e9 cycles / 4 GHz eff
    ctx.charge_serial(Phase::kUpdateBetaTheta, 1e9, 1.0);
  });
  EXPECT_DOUBLE_EQ(cluster.stats(0).get(Phase::kUpdatePhi), 1.0);
  EXPECT_DOUBLE_EQ(cluster.stats(0).get(Phase::kUpdateBetaTheta), 1.0);
}

TEST(ClusterTest, TimedBarrierBooksWaitTime) {
  SimCluster cluster(small_config(2));
  cluster.run([&](RankContext& ctx) {
    if (ctx.rank() == 1) ctx.charge(Phase::kUpdatePhi, 2.0);
    ctx.timed_barrier();
  });
  // Rank 0 waited ~2 s for rank 1.
  EXPECT_NEAR(cluster.stats(0).get(Phase::kBarrierWait), 2.0, 1e-3);
  EXPECT_NEAR(cluster.stats(1).get(Phase::kBarrierWait), 0.0, 1e-3);
  EXPECT_NEAR(cluster.max_clock(), cluster.clock(0).now(), 1e-12);
}

TEST(ClusterTest, MaxStatsTakesPerPhaseMaximum) {
  SimCluster cluster(small_config(2));
  cluster.run([&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.charge(Phase::kLoadPi, 3.0);
      ctx.charge(Phase::kUpdatePhi, 1.0);
    } else {
      ctx.charge(Phase::kLoadPi, 1.0);
      ctx.charge(Phase::kUpdatePhi, 2.0);
    }
  });
  const PhaseStats stats = cluster.max_stats();
  EXPECT_DOUBLE_EQ(stats.get(Phase::kLoadPi), 3.0);
  EXPECT_DOUBLE_EQ(stats.get(Phase::kUpdatePhi), 2.0);
}

TEST(ClusterTest, ExceptionInOneRankPropagatesWithoutDeadlock) {
  SimCluster cluster(small_config(3));
  EXPECT_THROW(cluster.run([&](RankContext& ctx) {
    if (ctx.rank() == 1) throw scd::Error("rank 1 exploded");
    ctx.transport().barrier(ctx.rank());  // would deadlock without abort
  }),
               scd::Error);
}

TEST(ClusterTest, ResetClearsClocksAndStats) {
  SimCluster cluster(small_config(2));
  cluster.run([&](RankContext& ctx) { ctx.charge(Phase::kLoadPi, 1.0); });
  cluster.reset();
  EXPECT_DOUBLE_EQ(cluster.max_clock(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.stats(0).get(Phase::kLoadPi), 0.0);
  // Cluster remains usable after reset.
  cluster.run([&](RankContext& ctx) {
    ctx.transport().barrier(ctx.rank());
  });
}

TEST(ClusterTest, SingleRankRunsInline) {
  SimCluster cluster(small_config(1));
  bool ran = false;
  cluster.run([&](RankContext& ctx) {
    ran = true;
    EXPECT_TRUE(ctx.is_master());
  });
  EXPECT_TRUE(ran);
}

TEST(PhaseStatsTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    names.insert(phase_name(static_cast<Phase>(i)));
  }
  EXPECT_EQ(names.size(), kNumPhases);
}

TEST(PhaseStatsTest, ArithmeticHelpers) {
  PhaseStats a;
  a.add(Phase::kLoadPi, 1.0);
  PhaseStats b;
  b.add(Phase::kLoadPi, 2.0);
  b.add(Phase::kUpdatePi, 0.5);
  a += b;
  EXPECT_DOUBLE_EQ(a.get(Phase::kLoadPi), 3.0);
  EXPECT_DOUBLE_EQ(a.total(), 3.5);
  a.scale(2.0);
  EXPECT_DOUBLE_EQ(a.get(Phase::kUpdatePi), 1.0);
  a.clear();
  EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

}  // namespace
}  // namespace scd::sim
