#include "sim/pipeline_cost.h"

#include <gtest/gtest.h>

namespace scd::sim {
namespace {

TEST(PipelineCostTest, EmptyPipelineIsZero) {
  PipelineCost p;
  EXPECT_DOUBLE_EQ(p.serial_total(), 0.0);
  EXPECT_DOUBLE_EQ(p.pipelined_total(), 0.0);
}

TEST(PipelineCostTest, SingleChunkHasNoOverlap) {
  PipelineCost p;
  p.add_chunk(2.0, 3.0);
  EXPECT_DOUBLE_EQ(p.serial_total(), 5.0);
  EXPECT_DOUBLE_EQ(p.pipelined_total(), 5.0);
}

TEST(PipelineCostTest, LoadBoundPipelineApproachesLoadTotal) {
  // load dominates: pipelined ~= load(0..n-1) + last compute.
  PipelineCost p;
  for (int i = 0; i < 10; ++i) p.add_chunk(5.0, 1.0);
  EXPECT_DOUBLE_EQ(p.serial_total(), 60.0);
  EXPECT_DOUBLE_EQ(p.pipelined_total(), 10 * 5.0 + 1.0);
}

TEST(PipelineCostTest, ComputeBoundPipelineApproachesComputeTotal) {
  PipelineCost p;
  for (int i = 0; i < 10; ++i) p.add_chunk(1.0, 5.0);
  // pipelined = load(0) + 9 * max(1, 5) + compute(last) = 1 + 45 + 5.
  EXPECT_DOUBLE_EQ(p.pipelined_total(), 51.0);
}

TEST(PipelineCostTest, BalancedChunksNearlyHalve) {
  PipelineCost p;
  for (int i = 0; i < 100; ++i) p.add_chunk(1.0, 1.0);
  EXPECT_DOUBLE_EQ(p.serial_total(), 200.0);
  EXPECT_DOUBLE_EQ(p.pipelined_total(), 1.0 + 99.0 + 1.0);
}

TEST(PipelineCostTest, PipelinedNeverExceedsSerial) {
  PipelineCost p;
  const double loads[] = {3.0, 0.5, 2.0, 4.0, 0.1};
  const double computes[] = {1.0, 2.5, 2.0, 0.2, 3.0};
  for (int i = 0; i < 5; ++i) p.add_chunk(loads[i], computes[i]);
  EXPECT_LE(p.pipelined_total(), p.serial_total());
  // And never less than either stage's total alone.
  EXPECT_GE(p.pipelined_total(), p.load_total());
  EXPECT_GE(p.pipelined_total(), p.compute_total());
}

TEST(PipelineCostTest, SubstageTotalsTracked) {
  PipelineCost p;
  p.add_chunk(2.0, 1.0);
  p.add_chunk(3.0, 4.0);
  EXPECT_DOUBLE_EQ(p.load_total(), 5.0);
  EXPECT_DOUBLE_EQ(p.compute_total(), 5.0);
  EXPECT_DOUBLE_EQ(p.total(false), p.serial_total());
  EXPECT_DOUBLE_EQ(p.total(true), p.pipelined_total());
}

}  // namespace
}  // namespace scd::sim
