// Stress and property tests for the simulated transport: many ranks,
// random traffic patterns, interleaved collectives on multiple channels,
// and virtual-clock invariants that must hold for any schedule.
#include <gtest/gtest.h>

#include <thread>

#include "random/xoshiro.h"
#include "sim/cluster.h"
#include "sim/transport.h"

namespace scd::sim {
namespace {

NetworkModel quiet_net() {
  NetworkModel net;
  net.collective_skew_s = 0.0;
  return net;
}

class TransportStressTest : public ::testing::TestWithParam<unsigned> {};

// Ring exchange: every rank sends to its right neighbor R rounds; data
// integrity and causality (receive clock >= send completion) must hold.
TEST_P(TransportStressTest, RingExchangeKeepsDataAndCausality) {
  const unsigned ranks = GetParam();
  SimCluster::Config config;
  config.num_ranks = ranks;
  config.network = quiet_net();
  SimCluster cluster(config);
  constexpr int kRounds = 25;

  cluster.run([&](RankContext& ctx) {
    const unsigned self = ctx.rank();
    const unsigned right = (self + 1) % ranks;
    const unsigned left = (self + ranks - 1) % ranks;
    for (int round = 0; round < kRounds; ++round) {
      const std::vector<std::uint64_t> payload = {
          std::uint64_t{self}, static_cast<std::uint64_t>(round)};
      ctx.transport().send(self, right, /*tag=*/7,
                           std::span<const std::uint64_t>(payload));
      const auto got =
          ctx.transport().recv<std::uint64_t>(self, left, /*tag=*/7);
      ASSERT_EQ(got.size(), 2u);
      ASSERT_EQ(got[0], left);
      ASSERT_EQ(got[1], static_cast<std::uint64_t>(round));
    }
  });
  // All clocks advanced (messages cost time) and are finite.
  for (unsigned r = 0; r < ranks; ++r) {
    EXPECT_GT(cluster.clock(r).now(), 0.0);
    EXPECT_LT(cluster.clock(r).now(), 1.0);
  }
}

// Random compute + barrier rounds: after every barrier all clocks agree,
// and the common clock equals the running maximum of work done.
TEST_P(TransportStressTest, BarrierRoundsSynchronizeToRunningMax) {
  const unsigned ranks = GetParam();
  SimCluster::Config config;
  config.num_ranks = ranks;
  config.network = quiet_net();
  SimCluster cluster(config);
  constexpr int kRounds = 12;

  std::vector<std::vector<double>> work(ranks,
                                        std::vector<double>(kRounds));
  rng::Xoshiro256 rng(99);
  for (auto& per_rank : work) {
    for (double& w : per_rank) w = rng.next_double() * 1e-3;
  }

  cluster.run([&](RankContext& ctx) {
    for (int round = 0; round < kRounds; ++round) {
      ctx.charge(Phase::kUpdatePhi, work[ctx.rank()][round]);
      ctx.transport().barrier(ctx.rank());
    }
  });

  // Expected: sum over rounds of (max over ranks of cumulative skew)...
  // simpler invariant: every clock equals every other clock, and is at
  // least the largest per-rank total and at most the sum of per-round
  // maxima plus barrier costs.
  const double clock0 = cluster.clock(0).now();
  for (unsigned r = 1; r < ranks; ++r) {
    EXPECT_DOUBLE_EQ(cluster.clock(r).now(), clock0);
  }
  double sum_of_maxima = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    double round_max = 0.0;
    for (unsigned r = 0; r < ranks; ++r) {
      round_max = std::max(round_max, work[r][round]);
    }
    sum_of_maxima += round_max;
  }
  EXPECT_GE(clock0, sum_of_maxima);  // barriers only add time
  EXPECT_LE(clock0, sum_of_maxima +
                        kRounds * config.network.collective_time(ranks, 0) +
                        1e-12);
}

// Reduce correctness under permuted arrival order: each rank sleeps a
// different (virtual) time before contributing; the rank-ordered fold
// must make the result arrival-order independent and exactly equal to
// the arithmetic sum.
TEST_P(TransportStressTest, ReduceIsArrivalOrderIndependent) {
  const unsigned ranks = GetParam();
  SimCluster::Config config;
  config.num_ranks = ranks;
  config.network = quiet_net();
  SimCluster cluster(config);

  std::vector<double> expected(4, 0.0);
  for (unsigned r = 0; r < ranks; ++r) {
    for (int i = 0; i < 4; ++i) {
      expected[static_cast<std::size_t>(i)] += r * 10.0 + i;
    }
  }
  std::vector<double> result(4);
  cluster.run([&](RankContext& ctx) {
    // Stagger real arrival with a real sleep keyed off rank.
    std::this_thread::sleep_for(
        std::chrono::microseconds((ctx.rank() * 7919) % 1500));
    std::vector<double> contribution(4);
    for (int i = 0; i < 4; ++i) {
      contribution[static_cast<std::size_t>(i)] = ctx.rank() * 10.0 + i;
    }
    ctx.transport().reduce_sum(ctx.rank(), 0, contribution);
    if (ctx.is_master()) result = contribution;
  });
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(result[static_cast<std::size_t>(i)],
                     expected[static_cast<std::size_t>(i)]);
  }
}

// Two channels running different collective sequences concurrently:
// evens barrier among themselves on channel 2 while everyone reduces on
// channel 0 — ordering within each channel is preserved, no deadlock.
TEST_P(TransportStressTest, ConcurrentChannelsDoNotInterfere) {
  const unsigned ranks = GetParam();
  if (ranks < 4) GTEST_SKIP() << "needs >= 4 ranks";
  const unsigned evens = (ranks + 1) / 2;
  SimCluster::Config config;
  config.num_ranks = ranks;
  config.network = quiet_net();
  SimCluster cluster(config);

  cluster.run([&](RankContext& ctx) {
    for (int round = 0; round < 10; ++round) {
      if (ctx.rank() % 2 == 0) {
        ctx.transport().barrier(ctx.rank(), /*channel=*/2, evens);
      }
      std::vector<double> acc = {1.0};
      ctx.transport().reduce_sum(ctx.rank(), 0, acc, /*channel=*/0);
      if (ctx.is_master()) {
        ASSERT_DOUBLE_EQ(acc[0], static_cast<double>(ranks));
      }
    }
  });
}

// Broadcast fan-out with rotating roots: every rank gets exactly the
// root's payload each round.
TEST_P(TransportStressTest, RotatingRootBroadcast) {
  const unsigned ranks = GetParam();
  SimCluster::Config config;
  config.num_ranks = ranks;
  config.network = quiet_net();
  SimCluster cluster(config);

  cluster.run([&](RankContext& ctx) {
    for (unsigned root = 0; root < ranks; ++root) {
      std::vector<float> data(8, ctx.rank() == root
                                     ? static_cast<float>(root) + 0.5f
                                     : -1.0f);
      ctx.transport().broadcast(ctx.rank(), root, std::span<float>(data));
      for (float v : data) {
        ASSERT_EQ(v, static_cast<float>(root) + 0.5f);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, TransportStressTest,
                         ::testing::Values(2u, 3u, 8u, 17u));

// Heavy random point-to-point fan-in to one sink: FIFO per channel and
// no message loss even when 16 producers blast concurrently.
TEST(TransportStressTest, ManyToOneFanInPreservesPerSenderOrder) {
  constexpr unsigned kRanks = 17;  // rank 0 is the sink
  constexpr int kPerSender = 50;
  SimCluster::Config config;
  config.num_ranks = kRanks;
  config.network = quiet_net();
  SimCluster cluster(config);

  cluster.run([&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      for (unsigned sender = 1; sender < kRanks; ++sender) {
        for (int i = 0; i < kPerSender; ++i) {
          const auto got = ctx.transport().recv<std::uint64_t>(
              0, sender, static_cast<int>(sender));
          ASSERT_EQ(got.size(), 1u);
          ASSERT_EQ(got[0], static_cast<std::uint64_t>(i))
              << "sender " << sender;
        }
      }
    } else {
      for (int i = 0; i < kPerSender; ++i) {
        const std::vector<std::uint64_t> payload = {
            static_cast<std::uint64_t>(i)};
        ctx.transport().send(ctx.rank(), 0,
                             static_cast<int>(ctx.rank()),
                             std::span<const std::uint64_t>(payload));
      }
    }
  });
}

}  // namespace
}  // namespace scd::sim
