#include "sim/compute_model.h"

#include <gtest/gtest.h>

namespace scd::sim {
namespace {

TEST(ComputeModelTest, KernelTimeScalesWithThreadsAndEfficiency) {
  ComputeModel m;
  m.clock_hz = 1e9;
  m.threads_per_node = 1;
  m.thread_efficiency = 1.0;
  EXPECT_DOUBLE_EQ(m.kernel_time(1e9, 1.0), 1.0);
  m.threads_per_node = 4;
  EXPECT_DOUBLE_EQ(m.kernel_time(1e9, 1.0), 0.25);
  m.thread_efficiency = 0.5;
  EXPECT_DOUBLE_EQ(m.kernel_time(1e9, 1.0), 0.5);
}

TEST(ComputeModelTest, SerialTimeIgnoresThreads) {
  ComputeModel m;
  m.clock_hz = 2e9;
  m.threads_per_node = 16;
  EXPECT_DOUBLE_EQ(m.serial_time(2e9, 1.0), 1.0);
}

TEST(ComputeModelTest, LocalBytesTime) {
  ComputeModel m;
  m.mem_bandwidth_Bps = 10e9;
  EXPECT_DOUBLE_EQ(m.local_bytes_time(10'000'000'000ull), 1.0);
}

TEST(ComputeModelTest, FactoryModelsMatchPaperHardware) {
  const ComputeModel das5 = das5_node();
  EXPECT_DOUBLE_EQ(das5.clock_hz, 2.4e9);  // E5-2630v3
  EXPECT_EQ(das5.threads_per_node, 16u);   // dual 8-core
  const ComputeModel cloud = hpc_cloud_node();
  EXPECT_DOUBLE_EQ(cloud.clock_hz, 2.0e9);  // E7-4850
  EXPECT_EQ(cloud.threads_per_node, 40u);
  // Equal units: the 40 slower cores still out-compute 16 faster ones.
  EXPECT_LT(cloud.kernel_time(1e9, 1.0), das5.kernel_time(1e9, 1.0));
}

TEST(ComputeModelTest, ValidationCatchesNonsense) {
  ComputeModel m;
  m.threads_per_node = 0;
  EXPECT_THROW(m.validate(), scd::UsageError);
  ComputeModel m2;
  m2.thread_efficiency = 1.5;
  EXPECT_THROW(m2.validate(), scd::UsageError);
}

}  // namespace
}  // namespace scd::sim
