#include "sim/transport.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.h"

namespace scd::sim {
namespace {

NetworkModel fast_net() {
  NetworkModel net;
  net.collective_skew_s = 0.0;
  return net;
}

TEST(TransportTest, SendRecvMovesDataAndTime) {
  std::vector<SimClock> clocks(2);
  SimTransport tp(2, fast_net(), clocks);
  const std::vector<double> payload = {1.0, 2.0, 3.0};

  clocks[0].advance(1.0);  // sender is at t = 1
  tp.send(0, 1, 7, std::span<const double>(payload));
  const auto received = tp.recv<double>(1, 0, 7);
  EXPECT_EQ(received, payload);
  // Receiver clock advanced past sender's send completion.
  EXPECT_GT(clocks[1].now(), 1.0);
}

TEST(TransportTest, ReceiverAheadKeepsItsClock) {
  std::vector<SimClock> clocks(2);
  SimTransport tp(2, fast_net(), clocks);
  tp.send(0, 1, 1, std::span<const double>(std::vector<double>{1.0}));
  clocks[1].advance(5.0);  // receiver was busy long past arrival
  tp.recv<double>(1, 0, 1);
  EXPECT_DOUBLE_EQ(clocks[1].now(), 5.0);
}

TEST(TransportTest, MessagesWithSameTagStayOrdered) {
  std::vector<SimClock> clocks(2);
  SimTransport tp(2, fast_net(), clocks);
  for (double v : {1.0, 2.0, 3.0}) {
    tp.send(0, 1, 2, std::span<const double>(std::vector<double>{v}));
  }
  EXPECT_EQ(tp.recv<double>(1, 0, 2)[0], 1.0);
  EXPECT_EQ(tp.recv<double>(1, 0, 2)[0], 2.0);
  EXPECT_EQ(tp.recv<double>(1, 0, 2)[0], 3.0);
}

TEST(TransportTest, NicSerializesBackToBackSends) {
  // Two large sends from rank 0: the second arrives roughly one wire
  // time after the first, not simultaneously.
  std::vector<SimClock> clocks(3);
  NetworkModel net = fast_net();
  net.bandwidth_Bps = 1e9;  // 1 GB/s -> 1 MB takes 1 ms
  SimTransport tp(3, net, clocks);
  const std::vector<std::byte> mb(1 << 20);
  tp.send(0, 1, 1, std::span<const std::byte>(mb));
  tp.send(0, 2, 1, std::span<const std::byte>(mb));
  tp.recv<std::byte>(1, 0, 1);
  tp.recv<std::byte>(2, 0, 1);
  const double wire = double(1 << 20) / net.bandwidth_Bps;
  EXPECT_NEAR(clocks[2].now() - clocks[1].now(), wire, wire * 0.05);
}

TEST(TransportTest, PhantomSendChargesTimeWithoutData) {
  std::vector<SimClock> clocks(2);
  SimTransport tp(2, fast_net(), clocks);
  tp.send_phantom(0, 1, 3, 1 << 20);
  tp.recv_discard(1, 0, 3);
  EXPECT_GT(clocks[1].now(), 1e-4);  // ~150 us of wire time
}

TEST(TransportTest, BarrierAlignsClocksToMax) {
  std::vector<SimClock> clocks(4);
  NetworkModel net = fast_net();
  SimTransport tp(4, net, clocks);
  std::vector<std::thread> threads;
  for (unsigned r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      clocks[r].advance(r * 1.0);
      tp.barrier(r);
    });
  }
  for (auto& t : threads) t.join();
  const double expected = 3.0 + net.collective_time(4, 0);
  for (const SimClock& c : clocks) {
    EXPECT_DOUBLE_EQ(c.now(), expected);
  }
}

TEST(TransportTest, ReduceSumsDeterministicallyAtRoot) {
  std::vector<SimClock> clocks(3);
  SimTransport tp(3, fast_net(), clocks);
  std::vector<std::vector<double>> data = {
      {1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  std::vector<std::thread> threads;
  for (unsigned r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] { tp.reduce_sum(r, 0, data[r]); });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(data[0][0], 6.0);
  EXPECT_DOUBLE_EQ(data[0][1], 60.0);
  // Non-root buffers untouched.
  EXPECT_DOUBLE_EQ(data[1][0], 2.0);
}

TEST(TransportTest, BroadcastDeliversRootData) {
  std::vector<SimClock> clocks(3);
  SimTransport tp(3, fast_net(), clocks);
  std::vector<std::vector<float>> data(3, std::vector<float>(4, 0.0f));
  data[1] = {1.0f, 2.0f, 3.0f, 4.0f};  // root = 1
  std::vector<std::thread> threads;
  for (unsigned r = 0; r < 3; ++r) {
    threads.emplace_back(
        [&, r] { tp.broadcast(r, 1, std::span<float>(data[r])); });
  }
  for (auto& t : threads) t.join();
  for (unsigned r = 0; r < 3; ++r) {
    EXPECT_EQ(data[r], data[1]) << "rank " << r;
  }
}

TEST(TransportTest, ChannelsAllowConcurrentGroups) {
  // Ranks 1..2 barrier on channel 1 while rank 0 joins only the global
  // reduce; no deadlock, no mismatched-collective error.
  std::vector<SimClock> clocks(3);
  SimTransport tp(3, fast_net(), clocks);
  std::vector<double> master_acc = {0.0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] { tp.reduce_sum(0, 0, master_acc, 0, 3); });
  for (unsigned r = 1; r < 3; ++r) {
    threads.emplace_back([&, r] {
      tp.barrier(r, 1, 2);  // worker-only barrier
      std::vector<double> v = {double(r)};
      tp.reduce_sum(r, 0, v, 0, 3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(master_acc[0], 3.0);
}

TEST(TransportTest, MismatchedCollectiveThrows) {
  std::vector<SimClock> clocks(2);
  SimTransport tp(2, fast_net(), clocks);
  std::exception_ptr error;
  std::thread t0([&] {
    try {
      tp.barrier(0);
    } catch (...) {
      // Aborted while waiting — expected collateral of the mismatch.
    }
  });
  std::thread t1([&] {
    try {
      std::vector<double> v = {1.0};
      tp.reduce_sum(1, 0, v);
    } catch (...) {
      error = std::current_exception();
      tp.abort_all();
    }
  });
  t0.join();
  t1.join();
  EXPECT_TRUE(error != nullptr);
}

TEST(TransportTest, AbortUnblocksReceivers) {
  std::vector<SimClock> clocks(2);
  SimTransport tp(2, fast_net(), clocks);
  std::exception_ptr error;
  std::thread blocked([&] {
    try {
      tp.recv<double>(1, 0, 9);  // nothing will ever arrive
    } catch (...) {
      error = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tp.abort_all();
  blocked.join();
  EXPECT_TRUE(error != nullptr);
}

}  // namespace
}  // namespace scd::sim
